//===- tests/server/DaemonTest.cpp - abdiagd end-to-end ----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The daemon over a real unix socket: wire-level protocol behavior
// (pipelined answers, protocol errors), admission control and backpressure,
// per-tenant caps, idle reaping, graceful drain, and -- the acceptance bar
// -- mirror-oracle replay of the certified benchmark suite producing
// verdicts identical to batch triage of the same queue.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "core/ErrorDiagnoser.h"
#include "core/Oracle.h"
#include "core/Triage.h"
#include "server/Client.h"
#include "server/Protocol.h"
#include "study/Benchmarks.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>

#include <unistd.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::server;

namespace {

/// A program that always asks at least one query and parks until answered.
const char *ParkingSource = R"(
program asks(n) {
  var i, j;
  assume(n >= 0);
  i = 0;
  j = 0;
  while (i < n) {
    i = i + 1;
    j = j + 2;
  } @ [i >= 0]
  check(j >= i);
}
)";

std::string uniqueSocketPath(const char *Tag) {
  return ::testing::TempDir() + "abdiagd_" + Tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Raw frame-level client for protocol tests.
class RawClient {
public:
  explicit RawClient(const std::string &SocketPath) {
    std::string Err;
    Fd = connectUnix(SocketPath, Err);
    EXPECT_TRUE(Fd.valid()) << Err;
    Reader = std::make_unique<LineReader>(Fd.get());
  }

  void send(const std::string &Frame) {
    ASSERT_TRUE(writeAll(Fd.get(), Frame + "\n"));
  }

  void submit(const std::string &Session, const char *Source,
              const std::string &Tenant = "") {
    std::string F = "{\"schema\":1,\"op\":\"submit\",\"session\":\"" + Session +
                    "\",\"name\":\"" + Session + "\",\"source\":\"";
    F += jsonEscape(Source);
    F += "\"";
    if (!Tenant.empty())
      F += ",\"tenant\":\"" + Tenant + "\"";
    F += "}";
    send(F);
  }

  void answer(const std::string &Session, uint64_t Query, const char *A) {
    send("{\"schema\":1,\"op\":\"answer\",\"session\":\"" + Session +
         "\",\"query\":" + std::to_string(Query) + ",\"answer\":\"" + A +
         "\"}");
  }

  void cancel(const std::string &Session) {
    send("{\"schema\":1,\"op\":\"cancel\",\"session\":\"" + Session + "\"}");
  }

  /// Reads frames until \p Pred accepts one; every frame seen is kept in
  /// Seen. Fails the test on EOF.
  ServerMessage waitFor(const std::function<bool(const ServerMessage &)> &Pred) {
    std::string Line, Err;
    while (Reader->readLine(Line)) {
      std::optional<ServerMessage> M = parseServerMessage(Line, Err);
      EXPECT_TRUE(M) << Err << " in: " << Line;
      if (!M)
        break;
      Seen.push_back(*M);
      if (Pred(*M))
        return *M;
    }
    ADD_FAILURE() << "connection closed while waiting for a frame";
    return ServerMessage();
  }

  ServerMessage waitForResult(const std::string &Session) {
    return waitFor([&](const ServerMessage &M) {
      return M.K == ServerMessage::Kind::Result && M.Session == Session;
    });
  }

  ServerMessage waitForError(const std::string &Session) {
    return waitFor([&](const ServerMessage &M) {
      return M.K == ServerMessage::Kind::Error && M.Session == Session;
    });
  }

  ServerMessage waitForAsk(const std::string &Session) {
    return waitFor([&](const ServerMessage &M) {
      return M.K == ServerMessage::Kind::Ask && M.Session == Session;
    });
  }

  std::vector<ServerMessage> Seen;

private:
  FdHandle Fd;
  std::unique_ptr<LineReader> Reader;
};

class DaemonTest : public ::testing::Test {
protected:
  std::string SocketPath;
  std::unique_ptr<DaemonServer> Server;

  void startServer(ServerConfig Cfg, const char *Tag) {
    SocketPath = uniqueSocketPath(Tag);
    Cfg.UnixPath = SocketPath;
    Server = std::make_unique<DaemonServer>(std::move(Cfg));
    std::string Err;
    ASSERT_TRUE(Server->start(Err)) << Err;
  }

  void TearDown() override {
    if (Server)
      Server->stop();
    if (!SocketPath.empty())
      std::filesystem::remove(SocketPath);
  }
};

TEST_F(DaemonTest, SuiteReplayOverSocketMatchesBatchVerdicts) {
  startServer(ServerConfig(), "suite");

  std::vector<TriageRequest> Queue;
  std::vector<ReplayItem> Items;
  for (const study::BenchmarkInfo &B : study::benchmarkSuite()) {
    Queue.emplace_back(study::benchmarkPath(B), B.Name);
    ReplayItem It;
    It.Name = B.Name;
    It.Path = study::benchmarkPath(B);
    Items.push_back(std::move(It));
  }
  TriageResult Batch = TriageEngine().run(Queue);

  ReplayOptions RO;
  RO.MaxInFlight = 4;
  ReplayClient Client(RO);
  std::string Err;
  ASSERT_TRUE(Client.connectUnixSocket(SocketPath, Err)) << Err;
  std::vector<ReplayOutcome> Out;
  ASSERT_TRUE(Client.run(Items, Out, Err)) << Err;

  ASSERT_EQ(Out.size(), Queue.size());
  for (size_t I = 0; I < Queue.size(); ++I) {
    const TriageReport &B = Batch.Reports[I];
    EXPECT_EQ(Out[I].Status, triageStatusName(B.Status)) << Queue[I].Name;
    std::string WantVerdict = B.Status == TriageStatus::Diagnosed
                                  ? diagnosisVerdictName(B.Outcome)
                                  : "";
    EXPECT_EQ(Out[I].Verdict, WantVerdict) << Queue[I].Name;
    EXPECT_EQ(Out[I].Queries, B.Queries) << Queue[I].Name;
    EXPECT_EQ(Out[I].ParseFailures, 0u) << Queue[I].Name;
  }

  DaemonServer::Stats St = Server->stats();
  EXPECT_EQ(St.Submitted, Queue.size());
  EXPECT_EQ(St.Completed, Queue.size());
  EXPECT_EQ(St.Refused, 0u);
}

TEST_F(DaemonTest, PipelinedAnswersAheadOfAsks) {
  startServer(ServerConfig(), "pipelined");
  RawClient C(SocketPath);
  C.submit("s1", ParkingSource);
  // Park a burst of unknowns before any ask exists; the dispatcher must
  // apply them as the queries materialize.
  for (uint64_t Q = 0; Q < 64; ++Q)
    C.answer("s1", Q, "unknown");
  ServerMessage R = C.waitForResult("s1");
  EXPECT_EQ(R.Status, "diagnosed");
  EXPECT_GT(R.Queries, 0u);
}

TEST_F(DaemonTest, BackpressureQueuesThenRefuses) {
  ServerConfig Cfg;
  Cfg.MaxActiveSessions = 1;
  Cfg.MaxPendingSessions = 1;
  startServer(Cfg, "busy");

  RawClient C(SocketPath);
  C.submit("s1", ParkingSource);
  C.waitForAsk("s1"); // s1 is running and parked
  C.submit("s2", ParkingSource);
  C.submit("s3", ParkingSource);
  // s2 queued, s3 over the bounded queue: refused with "busy".
  ServerMessage E = C.waitForError("s3");
  EXPECT_EQ(E.Code, "busy");

  // Freeing s1 admits s2.
  C.cancel("s1");
  EXPECT_EQ(C.waitForResult("s1").Status, "cancelled");
  C.waitForAsk("s2");
  // A queued session can also be cancelled before it ever starts.
  C.submit("s4", ParkingSource);
  C.cancel("s4");
  EXPECT_EQ(C.waitForResult("s4").Status, "cancelled");
  C.cancel("s2");
  C.waitForResult("s2");

  DaemonServer::Stats St = Server->stats();
  EXPECT_EQ(St.Refused, 1u);
  EXPECT_EQ(St.PeakActive, 1u);
}

TEST_F(DaemonTest, TenantCapRefuses) {
  ServerConfig Cfg;
  Cfg.MaxSessionsPerTenant = 1;
  startServer(Cfg, "tenant");

  RawClient C(SocketPath);
  C.submit("s1", ParkingSource, "teamA");
  C.submit("s2", ParkingSource, "teamA");
  ServerMessage E = C.waitForError("s2");
  EXPECT_EQ(E.Code, "tenant_limit");
  // A different tenant still gets in.
  C.submit("s3", ParkingSource, "teamB");
  C.waitForAsk("s3");
  // Finishing s1 frees teamA's slot.
  C.cancel("s1");
  C.waitForResult("s1");
  C.submit("s4", ParkingSource, "teamA");
  C.waitForAsk("s4");
  C.cancel("s3");
  C.cancel("s4");
  C.waitForResult("s3");
  C.waitForResult("s4");
}

TEST_F(DaemonTest, DrainRefusesNewAndFinishesInFlight) {
  startServer(ServerConfig(), "drain");

  RawClient C(SocketPath);
  C.submit("s1", ParkingSource);
  ServerMessage Ask = C.waitForAsk("s1");

  Server->requestDrain();
  C.submit("s2", ParkingSource);
  EXPECT_EQ(C.waitForError("s2").Code, "draining");

  // The in-flight session still runs to a verdict through the drain.
  std::thread Waiter([&] { Server->wait(); });
  for (uint64_t Q = Ask.Query; Q < Ask.Query + 64; ++Q)
    C.answer("s1", Q, "unknown");
  ServerMessage R = C.waitForResult("s1");
  EXPECT_EQ(R.Status, "diagnosed");
  Waiter.join(); // drain completed exactly when the last session did

  DaemonServer::Stats St = Server->stats();
  EXPECT_EQ(St.Completed, 1u);
  EXPECT_EQ(St.Refused, 1u);
}

TEST_F(DaemonTest, IdleReaperCancelsAbandonedSessions) {
  ServerConfig Cfg;
  Cfg.IdleReapMs = 80;
  startServer(Cfg, "reap");

  RawClient C(SocketPath);
  C.submit("s1", ParkingSource);
  C.waitForAsk("s1");
  // Never answer: the reaper must cancel the session for us.
  ServerMessage R = C.waitForResult("s1");
  EXPECT_EQ(R.Status, "cancelled");
  EXPECT_GE(Server->stats().Reaped, 1u);
}

TEST_F(DaemonTest, ProtocolErrors) {
  startServer(ServerConfig(), "proto");
  RawClient C(SocketPath);

  C.send("this is not json");
  EXPECT_EQ(C.waitForError("").Code, "bad_message");

  C.send("{\"schema\":1,\"op\":\"frobnicate\",\"session\":\"x\"}");
  EXPECT_EQ(C.waitForError("").Code, "bad_message");

  C.answer("ghost", 0, "yes");
  EXPECT_EQ(C.waitForError("ghost").Code, "unknown_session");

  C.submit("s1", ParkingSource);
  ServerMessage Ask = C.waitForAsk("s1");
  C.submit("s1", ParkingSource);
  EXPECT_EQ(C.waitForError("s1").Code, "duplicate_session");

  // Answering a query that was already answered is rejected.
  C.answer("s1", Ask.Query, "unknown");
  C.answer("s1", Ask.Query, "unknown");
  EXPECT_EQ(C.waitForError("s1").Code, "bad_query_index");

  // Protocol errors never kill the session: it can still finish.
  for (uint64_t Q = Ask.Query + 1; Q < Ask.Query + 64; ++Q)
    C.answer("s1", Q, "unknown");
  EXPECT_EQ(C.waitForResult("s1").Status, "diagnosed");
  EXPECT_GE(Server->stats().ProtocolErrors, 4u);
}

TEST_F(DaemonTest, ConnectionDropCancelsItsSessions) {
  startServer(ServerConfig(), "drop");
  {
    RawClient C(SocketPath);
    C.submit("s1", ParkingSource);
    C.waitForAsk("s1");
    // Client vanishes with a parked session.
  }
  // The daemon notices EOF and unwinds the abandoned session; once that is
  // done a drain completes immediately.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Server->stats().Completed < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Server->requestDrain();
  Server->wait();
  EXPECT_EQ(Server->stats().Completed, 1u);
}

TEST_F(DaemonTest, ManyConcurrentSessionsInterleave) {
  ServerConfig Cfg;
  Cfg.MaxActiveSessions = 16;
  Cfg.MaxPendingSessions = 256;
  startServer(Cfg, "many");

  // The same parked-heavy program 48 times, answered by two connections'
  // mirror oracles concurrently.
  std::vector<ReplayItem> Items;
  for (size_t I = 0; I < 48; ++I) {
    ReplayItem It;
    It.Session = "m" + std::to_string(I);
    It.Name = It.Session;
    It.Source = ParkingSource;
    Items.push_back(std::move(It));
  }
  auto Half = Items.begin() + Items.size() / 2;
  std::vector<ReplayItem> A(Items.begin(), Half), B(Half, Items.end());

  auto RunPart = [&](const std::vector<ReplayItem> &Part,
                     std::vector<ReplayOutcome> &Out, std::string &Err) {
    ReplayOptions RO;
    RO.MaxInFlight = 24;
    ReplayClient C(RO);
    if (!C.connectUnixSocket(SocketPath, Err))
      return false;
    return C.run(Part, Out, Err);
  };
  std::vector<ReplayOutcome> OutA, OutB;
  std::string ErrA, ErrB;
  bool OkB = false;
  std::thread TB([&] { OkB = RunPart(B, OutB, ErrB); });
  bool OkA = RunPart(A, OutA, ErrA);
  TB.join();
  ASSERT_TRUE(OkA) << ErrA;
  ASSERT_TRUE(OkB) << ErrB;

  for (const auto *Out : {&OutA, &OutB})
    for (const ReplayOutcome &O : *Out) {
      EXPECT_EQ(O.Status, "diagnosed") << O.Name;
      EXPECT_EQ(O.Verdict, OutA[0].Verdict) << O.Name;
      EXPECT_EQ(O.Queries, OutA[0].Queries) << O.Name;
    }
  DaemonServer::Stats St = Server->stats();
  EXPECT_EQ(St.Completed, Items.size());
  EXPECT_LE(St.PeakActive, 16u);
}

TEST_F(DaemonTest, AllUnknownAnswersMatchInProcessVerdict) {
  // The Section 5 degradation over the wire: a client that answers "I
  // don't know" to every ask must land on exactly the verdict the
  // in-process diagnoser reaches under ScriptExhaustion::Unknown -- for a
  // plain loop program and for an interprocedural one whose queries come
  // from an instantiated callee summary.
  const char *CallSource = R"(
function sum_to(n) {
  var i, s;
  i = 0;
  s = 0;
  while (i < n) { i = i + 1; s = s + i; } @ [i >= 0 && i >= n]
  return s;
}
program main(n) {
  var total;
  assume(n >= 1);
  total = sum_to(n);
  check(total >= n);
}
)";
  // No escalation retry: the in-process twin below runs diagnose() exactly
  // once, so the wire side must too for query counts to be comparable.
  ServerConfig Cfg;
  Cfg.EscalateOnInconclusive = false;
  startServer(Cfg, "unknowns");
  RawClient C(SocketPath);
  const char *Sources[] = {ParkingSource, CallSource};
  for (size_t I = 0; I < std::size(Sources); ++I) {
    std::string Session = "u" + std::to_string(I);
    C.submit(Session, Sources[I]);
    for (uint64_t Q = 0; Q < 256; ++Q)
      C.answer(Session, Q, "unknown");
    ServerMessage R = C.waitForResult(Session);
    EXPECT_EQ(R.Status, "diagnosed") << Sources[I];

    ErrorDiagnoser D;
    ASSERT_TRUE(D.loadSource(Sources[I]));
    ScriptedOracle O({}, ScriptExhaustion::Unknown);
    DiagnosisResult InProcess = D.diagnose(O);
    EXPECT_EQ(R.Verdict, diagnosisVerdictName(InProcess.Outcome))
        << Sources[I];
    EXPECT_EQ(R.Queries, InProcess.Transcript.size()) << Sources[I];
  }
}

} // namespace
