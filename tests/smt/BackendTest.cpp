//===- tests/smt/BackendTest.cpp - DecisionProcedure backends ---------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable decision-procedure layer: the backend registry, the
/// NativeBackend adapter, the Z3Backend (when built), and the differential
/// cross-checking backend -- including that an injected wrong verdict is
/// actually detected. Z3-dependent cases GTEST_SKIP cleanly when the binary
/// was configured with ABDIAG_WITH_Z3=OFF.
///
//===----------------------------------------------------------------------===//

#include "smt/DecisionProcedure.h"

#include "smt/DifferentialBackend.h"
#include "smt/FormulaOps.h"
#include "smt/NativeBackend.h"
#include "smt/Z3Backend.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Builds a random NNF formula over \p Vars (same shape as the differential
/// suite's generator).
const Formula *randomFormula(FormulaManager &M, Rng &R,
                             const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.7))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    switch (R.range(0, 4)) {
    case 0:
      return M.mkAtom(AtomRel::Le, E);
    case 1:
      return M.mkAtom(AtomRel::Eq, E);
    case 2:
      return M.mkAtom(AtomRel::Ne, E);
    case 3:
      return M.mkAtom(AtomRel::Div, E, R.range(2, 4));
    default:
      return M.mkAtom(AtomRel::NDiv, E, R.range(2, 4));
    }
  }
  std::vector<const Formula *> Kids;
  int N = static_cast<int>(R.range(2, 3));
  for (int I = 0; I < N; ++I)
    Kids.push_back(randomFormula(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

std::vector<VarId> makeVars(FormulaManager &M) {
  return {M.vars().create("x", VarKind::Input),
          M.vars().create("y", VarKind::Input),
          M.vars().create("z", VarKind::Abstraction)};
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(BackendRegistryTest, BuiltinsAreRegistered) {
  std::vector<std::string> Names = backendNames();
  for (const char *Expect : {"native", "z3", "differential"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expect), Names.end())
        << "missing builtin backend " << Expect;
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
  EXPECT_TRUE(backendAvailable("native"));
  EXPECT_EQ(backendAvailable("z3"), z3BackendBuilt());
  EXPECT_EQ(backendAvailable("differential"), z3BackendBuilt());
}

TEST(BackendRegistryTest, CreateNative) {
  FormulaManager M;
  std::unique_ptr<DecisionProcedure> B = createBackend("native", M);
  ASSERT_NE(B, nullptr);
  EXPECT_STREQ(B->name(), "native");
  EXPECT_TRUE(B->capabilities().NativeQe);
  EXPECT_TRUE(B->isSat(M.getTrue()));
  EXPECT_FALSE(B->isSat(M.getFalse()));
}

TEST(BackendRegistryTest, UnknownNameThrows) {
  FormulaManager M;
  EXPECT_THROW((void)createBackend("no-such-backend", M), BackendError);
  EXPECT_FALSE(backendAvailable("no-such-backend"));
}

TEST(BackendRegistryTest, UnbuiltBackendThrowsUnavailable) {
  if (z3BackendBuilt())
    GTEST_SKIP() << "z3 backend is built into this binary";
  FormulaManager M;
  EXPECT_THROW((void)createBackend("z3", M), BackendUnavailableError);
  EXPECT_THROW((void)createBackend("differential", M),
               BackendUnavailableError);
}

//===----------------------------------------------------------------------===//
// NativeBackend behaves exactly like the wrapped Solver
//===----------------------------------------------------------------------===//

TEST(NativeBackendTest, ModelsAndSessions) {
  FormulaManager M;
  NativeBackend B(M);
  std::vector<VarId> Vars = makeVars(M);
  const Formula *F =
      M.mkAnd(M.mkGe(LinearExpr::variable(Vars[0]), LinearExpr::constant(3)),
              M.mkLe(LinearExpr::variable(Vars[0]), LinearExpr::constant(3)));
  Model Mo;
  ASSERT_TRUE(B.isSat(F, &Mo));
  EXPECT_EQ(Mo.at(Vars[0]), 3);

  std::unique_ptr<DecisionProcedure::Session> Sess = B.openSession();
  EXPECT_TRUE(Sess->check({F}));
  const Formula *Conflict =
      M.mkGe(LinearExpr::variable(Vars[0]), LinearExpr::constant(10));
  EXPECT_FALSE(Sess->check({F, Conflict}));
  const std::vector<const Formula *> &Core = Sess->lastCore();
  EXPECT_FALSE(Core.empty());
  for (const Formula *C : Core)
    EXPECT_TRUE(C == F || C == Conflict);
}

TEST(NativeBackendTest, StatsAndQeForwarding) {
  FormulaManager M;
  NativeBackend B(M);
  std::vector<VarId> Vars = makeVars(M);
  Rng R(99);
  const Formula *F = randomFormula(M, R, Vars, 1);
  (void)B.isSat(F);
  EXPECT_GT(B.stats().Queries, 0u);
  B.resetStats();
  EXPECT_EQ(B.stats().Queries, 0u);
  // QE through the backend equals the free-function result (memo is keyed
  // on hash-consed pointers, so pointer equality is the right check).
  std::vector<VarId> Xs = {Vars[0]};
  EXPECT_EQ(B.eliminateForall(F, Xs), eliminateForall(M, F, Xs));
}

//===----------------------------------------------------------------------===//
// Differential backend: injected-wrong-verdict detection (no Z3 needed)
//===----------------------------------------------------------------------===//

/// A backend that answers every satisfiability query with a fixed verdict --
/// the "bug" the differential harness must catch.
class LyingBackend final : public DecisionProcedure {
public:
  LyingBackend(FormulaManager &M, bool Verdict)
      : DecisionProcedure(M), Verdict(Verdict) {}

  const char *name() const override { return "lying"; }
  BackendCapabilities capabilities() const override {
    BackendCapabilities C;
    C.Models = false;
    C.NativeQe = false;
    return C;
  }
  bool isSat(const Formula *, Model *Out = nullptr) override {
    (void)Out;
    ++St.Queries;
    return Verdict;
  }
  std::unique_ptr<Session> openSession() override {
    class LyingSession final : public Session {
    public:
      explicit LyingSession(bool V) : Verdict(V) {}
      bool check(const std::vector<const Formula *> &,
                 Model * = nullptr) override {
        return Verdict;
      }
      const std::vector<const Formula *> &lastCore() const override {
        return Empty;
      }
      size_t numCores() const override { return 0; }

    private:
      bool Verdict;
      std::vector<const Formula *> Empty;
    };
    return std::make_unique<LyingSession>(Verdict);
  }
  const Formula *eliminateForall(const Formula *F,
                                 const std::vector<VarId> &) override {
    return F;
  }
  const SolverStats &stats() const override { return St; }
  void resetStats() override { St = SolverStats(); }
  void setCancellation(const support::CancellationToken *) override {}
  const support::CancellationToken *cancellation() const override {
    return nullptr;
  }
  void setCaching(bool) override {}
  bool cachingEnabled() const override { return false; }

private:
  bool Verdict;
  SolverStats St;
};

TEST(DifferentialBackendTest, DetectsInjectedWrongVerdict) {
  FormulaManager M;
  std::vector<VarId> Vars = makeVars(M);
  // Secondary claims everything is unsat; the first satisfiable query must
  // abort with a mismatch carrying a reproducer dump.
  DifferentialBackend B(M, std::make_unique<NativeBackend>(M),
                        std::make_unique<LyingBackend>(M, false));
  const Formula *Sat =
      M.mkGe(LinearExpr::variable(Vars[0]), LinearExpr::constant(0));
  try {
    (void)B.isSat(Sat);
    FAIL() << "differential backend accepted disagreeing verdicts";
  } catch (const BackendMismatchError &E) {
    std::string What = E.what();
    EXPECT_NE(What.find("disagreement"), std::string::npos) << What;
    EXPECT_NE(What.find("reproducer"), std::string::npos) << What;
    EXPECT_NE(What.find("x"), std::string::npos)
        << "reproducer dump should mention the variable: " << What;
  }
}

TEST(DifferentialBackendTest, DetectsInjectedWrongSessionVerdict) {
  FormulaManager M;
  std::vector<VarId> Vars = makeVars(M);
  DifferentialBackend B(M, std::make_unique<NativeBackend>(M),
                        std::make_unique<LyingBackend>(M, true));
  std::unique_ptr<DecisionProcedure::Session> Sess = B.openSession();
  const Formula *Unsat =
      M.mkAnd(M.mkGe(LinearExpr::variable(Vars[0]), LinearExpr::constant(1)),
              M.mkLe(LinearExpr::variable(Vars[0]), LinearExpr::constant(0)));
  EXPECT_THROW((void)Sess->check({Unsat}), BackendMismatchError);
}

TEST(DifferentialBackendTest, AgreeingBackendsPassThrough) {
  FormulaManager M;
  std::vector<VarId> Vars = makeVars(M);
  // Native cross-checked against a second native instance: verdicts agree
  // on every random formula, and the cross-check counter advances.
  DifferentialBackend B(M, std::make_unique<NativeBackend>(M),
                        std::make_unique<NativeBackend>(M));
  Rng R(4321);
  for (int Round = 0; Round < 40; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    Model Mo;
    if (B.isSat(F, &Mo)) {
      EXPECT_TRUE(evaluate(F, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      })) << "round " << Round;
    }
  }
  EXPECT_GT(B.stats().CrossChecks, 0u);
  EXPECT_GT(B.stats().Queries, 0u);
}

//===----------------------------------------------------------------------===//
// Z3 backend (skipped when not built)
//===----------------------------------------------------------------------===//

TEST(Z3BackendTest, SeededDifferentialFuzzAgainstNative) {
  if (!backendAvailable("z3"))
    GTEST_SKIP() << "z3 backend not built (ABDIAG_WITH_Z3=OFF)";
  FormulaManager M;
  std::unique_ptr<DecisionProcedure> B = createBackend("differential", M);
  EXPECT_STREQ(B->name(), "differential");
  std::vector<VarId> Vars = makeVars(M);
  Rng R(20120611); // PLDI 2012, for reproducibility of the fuzz corpus
  for (int Round = 0; Round < 200; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    // The differential backend throws BackendMismatchError on any native/Z3
    // disagreement, so merely completing the loop is the assertion.
    Model Mo;
    if (B->isSat(F, &Mo)) {
      EXPECT_TRUE(evaluate(F, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      })) << "round " << Round;
    }
  }
  EXPECT_GE(B->stats().CrossChecks, 200u);
}

TEST(Z3BackendTest, SessionAgreesWithOneShot) {
  if (!backendAvailable("z3"))
    GTEST_SKIP() << "z3 backend not built (ABDIAG_WITH_Z3=OFF)";
  FormulaManager M;
  std::unique_ptr<DecisionProcedure> Z = createBackend("z3", M);
  std::vector<VarId> Vars = makeVars(M);
  Rng R(271828);
  std::vector<const Formula *> Pool;
  for (int I = 0; I < 10; ++I)
    Pool.push_back(randomFormula(M, R, Vars, 2));
  std::unique_ptr<DecisionProcedure::Session> Sess = Z->openSession();
  for (int Round = 0; Round < 60; ++Round) {
    std::vector<const Formula *> Conj;
    int N = static_cast<int>(R.range(1, 4));
    for (int I = 0; I < N; ++I)
      Conj.push_back(Pool[R.range(0, Pool.size() - 1)]);
    Model Mo;
    bool SessRes = Sess->check(Conj, &Mo);
    bool OneShot =
        Z->isSat(M.mkAnd(std::vector<const Formula *>(Conj)));
    ASSERT_EQ(SessRes, OneShot) << "round " << Round;
    if (SessRes) {
      for (const Formula *F : Conj)
        EXPECT_TRUE(evaluate(F, [&](VarId V) {
          auto It = Mo.find(V);
          return It == Mo.end() ? int64_t(0) : It->second;
        })) << "round " << Round;
    } else {
      // The assumption core must be a subset of the conjuncts and itself
      // unsatisfiable.
      const std::vector<const Formula *> &Core = Sess->lastCore();
      EXPECT_FALSE(Core.empty()) << "round " << Round;
      for (const Formula *C : Core)
        EXPECT_NE(std::find(Conj.begin(), Conj.end(), C), Conj.end());
      EXPECT_FALSE(Z->isSat(
          M.mkAnd(std::vector<const Formula *>(Core.begin(), Core.end()))))
          << "round " << Round;
    }
  }
}

TEST(Z3BackendTest, UnifiedHelperSignatures) {
  if (!z3BackendBuilt())
    GTEST_SKIP() << "z3 backend not built (ABDIAG_WITH_Z3=OFF)";
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  const Formula *F =
      M.mkGe(LinearExpr::variable(X), LinearExpr::constant(5));
  // Both helpers take the manager first -- the same context -- and agree
  // with the obvious truths.
  EXPECT_TRUE(z3IsSat(M, F));
  EXPECT_FALSE(z3IsValid(M, F));
  EXPECT_TRUE(z3IsValid(M, M.mkOr(F, M.mkNot(F))));
  EXPECT_FALSE(z3IsSat(M, M.mkAnd(F, M.mkNot(F))));
}

TEST(Z3BackendTest, QeCrossCheckedThroughDifferential) {
  if (!backendAvailable("z3"))
    GTEST_SKIP() << "z3 backend not built (ABDIAG_WITH_Z3=OFF)";
  FormulaManager M;
  std::unique_ptr<DecisionProcedure> B = createBackend("differential", M);
  std::vector<VarId> Vars = makeVars(M);
  Rng R(5551212);
  for (int Round = 0; Round < 20; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 1);
    std::vector<VarId> Xs = {Vars[0]};
    // Z3 verifies (forall x. F) <=> Elim inside the differential backend; a
    // wrong elimination would throw BackendMismatchError here.
    const Formula *Elim = B->eliminateForall(F, Xs);
    EXPECT_FALSE(containsVar(Elim, Vars[0])) << "round " << Round;
  }
}

} // namespace
