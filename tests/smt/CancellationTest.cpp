//===- tests/smt/CancellationTest.cpp - Cooperative cancellation ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Cancellation.h"

#include "smt/FormulaParser.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace abdiag;
using namespace abdiag::smt;
using namespace abdiag::support;

namespace {

TEST(CancellationTokenTest, FreshTokenNeverExpires) {
  CancellationToken T;
  // No deadline, no cancel(): poll as often as the solver would.
  for (int I = 0; I < 10000; ++I)
    EXPECT_FALSE(T.expired());
  EXPECT_NO_THROW(T.poll());
}

TEST(CancellationTokenTest, CancelFires) {
  CancellationToken T;
  T.cancel();
  EXPECT_TRUE(T.expired());
  EXPECT_THROW(T.poll(), CancelledError);
  // Cancellation is sticky.
  EXPECT_TRUE(T.expired());
}

TEST(CancellationTokenTest, DeadlineFires) {
  CancellationToken T(std::chrono::milliseconds(0));
  // The deadline already passed; the very first poll reads the clock.
  EXPECT_TRUE(T.expired());
  EXPECT_THROW(T.poll(), CancelledError);
}

TEST(CancellationTokenTest, DeadlineInFutureDoesNotFire) {
  CancellationToken T(std::chrono::hours(24));
  for (int I = 0; I < 10000; ++I)
    EXPECT_FALSE(T.expired());
}

TEST(CancellationTokenTest, RateLimitedPollsEventuallySeeDeadline) {
  CancellationToken T(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is read only every 256th poll, so one call may miss; a few
  // hundred polls are guaranteed to hit a clock read.
  bool Fired = false;
  for (int I = 0; I < 600 && !Fired; ++I)
    Fired = T.expired();
  EXPECT_TRUE(Fired);
}

TEST(CancellationTokenTest, NullTokenIsNotCancellable) {
  EXPECT_NO_THROW(pollCancellation(nullptr));
}

TEST(CancellationTokenTest, CancelFromAnotherThread) {
  CancellationToken T;
  std::thread Canceller([&T] { T.cancel(); });
  Canceller.join();
  EXPECT_THROW(T.poll(), CancelledError);
}

TEST(SolverCancellationTest, ExpiredTokenAbortsIsSat) {
  FormulaManager M;
  Solver S(M);
  FormulaParseResult P =
      parseFormula(M, "x > 0 && y > 0 && x + y < 10 && 3*x - 2*y == 1");
  ASSERT_TRUE(P.ok()) << P.Error;
  const Formula *F = P.F;
  CancellationToken T;
  T.cancel();
  S.setCancellation(&T);
  EXPECT_THROW(S.isSat(F), CancelledError);
  // Removing the token restores normal operation on the same solver.
  S.setCancellation(nullptr);
  EXPECT_TRUE(S.isSat(F));
}

TEST(SolverCancellationTest, LiveTokenDoesNotDisturbVerdicts) {
  FormulaManager M;
  Solver S(M);
  FormulaParseResult PSat =
      parseFormula(M, "x > 0 && y > 0 && x + y < 10 && 3*x - 2*y == 1");
  FormulaParseResult PUnsat = parseFormula(M, "x > 0 && x < 0");
  ASSERT_TRUE(PSat.ok()) << PSat.Error;
  ASSERT_TRUE(PUnsat.ok()) << PUnsat.Error;
  const Formula *Sat = PSat.F;
  const Formula *Unsat = PUnsat.F;
  CancellationToken T(std::chrono::hours(24));
  S.setCancellation(&T);
  EXPECT_TRUE(S.isSat(Sat));
  EXPECT_FALSE(S.isSat(Unsat));
}

TEST(SolverStatsTest, PlusAndMinusAggregate) {
  Solver::Stats A, B;
  A.Queries = 10;
  A.TheoryChecks = 20;
  A.CacheHits = 5;
  A.QeCacheMisses = 2;
  B.Queries = 3;
  B.TheoryChecks = 7;
  B.CacheHits = 1;
  B.QeCacheMisses = 9;
  Solver::Stats Sum = A;
  Sum += B;
  EXPECT_EQ(Sum.Queries, 13u);
  EXPECT_EQ(Sum.TheoryChecks, 27u);
  EXPECT_EQ(Sum.CacheHits, 6u);
  EXPECT_EQ(Sum.QeCacheMisses, 11u);
  Sum -= B;
  EXPECT_EQ(Sum.Queries, A.Queries);
  EXPECT_EQ(Sum.TheoryChecks, A.TheoryChecks);
  EXPECT_EQ(Sum.CacheHits, A.CacheHits);
  EXPECT_EQ(Sum.QeCacheMisses, A.QeCacheMisses);
}

} // namespace
