//===- tests/smt/CooperTest.cpp - Quantifier elimination tests --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"

#include "smt/FormulaOps.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class CooperTest : public ::testing::Test {
protected:
  FormulaManager M;
  Solver S{M};
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);
  VarId Z = M.vars().create("z", VarKind::Input);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr z(int64_t C = 1) { return LinearExpr::variable(Z, C); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }
};

TEST_F(CooperTest, ExistsOfFreeFormulaIsIdentity) {
  const Formula *F = M.mkLe(y(), c(3));
  EXPECT_EQ(eliminateExists(M, F, X), F);
}

TEST_F(CooperTest, ExistsUnboundedIsTrue) {
  // ∃x. x <= y is always true.
  const Formula *R = eliminateExists(M, M.mkLe(x(), y()), X);
  EXPECT_TRUE(S.isValid(R));
  EXPECT_FALSE(containsVar(R, X));
}

TEST_F(CooperTest, ExistsBetweenBounds) {
  // ∃x. y <= x && x <= z  <=>  y <= z.
  const Formula *F = M.mkAnd(M.mkLe(y(), x()), M.mkLe(x(), z()));
  const Formula *R = eliminateExists(M, F, X);
  EXPECT_FALSE(containsVar(R, X));
  EXPECT_TRUE(S.equivalent(R, M.mkLe(y(), z())));
}

TEST_F(CooperTest, ExistsEmptyInterval) {
  // ∃x. y < x && x < y+1 is false over integers.
  const Formula *F = M.mkAnd(M.mkLt(y(), x()), M.mkLt(x(), y().addConst(1)));
  const Formula *R = eliminateExists(M, F, X);
  EXPECT_FALSE(S.isSat(R));
}

TEST_F(CooperTest, ExistsWithCoefficient) {
  // ∃x. 2x = y  <=>  2 | y.
  const Formula *R = eliminateExists(M, M.mkEq(x(2), y()), X);
  EXPECT_FALSE(containsVar(R, X));
  EXPECT_TRUE(S.equivalent(R, M.mkDiv(2, y())));
}

TEST_F(CooperTest, ExistsWithDivisibility) {
  // ∃x. (3 | x) && y <= x && x <= y + 2: always true (some multiple of 3
  // lies in any window of length 3).
  const Formula *F = M.mkAnd(
      {M.mkDiv(3, x()), M.mkLe(y(), x()), M.mkLe(x(), y().addConst(2))});
  const Formula *R = eliminateExists(M, F, X);
  EXPECT_TRUE(S.isValid(R));
}

TEST_F(CooperTest, ExistsWithDivisibilityTightWindow) {
  // ∃x. (3 | x) && y <= x && x <= y + 1: holds iff y or y+1 is divisible
  // by 3, i.e. not (3 | y + 2).
  const Formula *F = M.mkAnd(
      {M.mkDiv(3, x()), M.mkLe(y(), x()), M.mkLe(x(), y().addConst(1))});
  const Formula *R = eliminateExists(M, F, X);
  EXPECT_TRUE(
      S.equivalent(R, M.mkAtom(AtomRel::NDiv, y().addConst(2), 3)));
}

TEST_F(CooperTest, ForallUnsatisfiableBound) {
  // ∀x. x <= y is false (x unbounded above).
  const Formula *R = eliminateForall(M, M.mkLe(x(), y()), X);
  EXPECT_FALSE(S.isSat(R));
}

TEST_F(CooperTest, ForallOfDisjunctionCaseSplit) {
  // ∀x. (x <= y || x >= y + 1) is true.
  const Formula *F = M.mkOr(M.mkLe(x(), y()), M.mkGe(x(), y().addConst(1)));
  EXPECT_TRUE(S.isValid(eliminateForall(M, F, X)));
  // ∀x. (x <= y || x >= y + 2) is false.
  const Formula *G = M.mkOr(M.mkLe(x(), y()), M.mkGe(x(), y().addConst(2)));
  EXPECT_FALSE(S.isSat(eliminateForall(M, G, X)));
}

TEST_F(CooperTest, ForallImplicationWeakestCondition) {
  // ∀x. (x >= y => x >= z)  <=>  z <= y.
  const Formula *F = M.mkImplies(M.mkGe(x(), y()), M.mkGe(x(), z()));
  const Formula *R = eliminateForall(M, F, X);
  EXPECT_TRUE(S.equivalent(R, M.mkLe(z(), y())));
}

TEST_F(CooperTest, MultiVariableElimination) {
  // ∃x,y. x <= z && z <= x + 0 && y = x  (forces nothing on z) == true.
  const Formula *F = M.mkAnd(
      {M.mkLe(x(), z()), M.mkLe(z(), x()), M.mkEq(y(), x())});
  const Formula *R = eliminateExists(M, F, std::vector<VarId>{X, Y});
  EXPECT_TRUE(S.isValid(R));
}

TEST_F(CooperTest, EliminationPreservesEquisatisfiability) {
  // ∃x. 4x >= z && 3x <= y  <=>  exists integer x in [ceil(z/4), floor(y/3)].
  const Formula *F = M.mkAnd(M.mkGe(x(4), z()), M.mkLe(x(3), y()));
  const Formula *R = eliminateExists(M, F, X);
  EXPECT_FALSE(containsVar(R, X));
  // Spot check semantics on a grid by substituting z and y values.
  for (int64_t VZ = -8; VZ <= 8; VZ += 2)
    for (int64_t VY = -8; VY <= 8; VY += 2) {
      bool Expected = false;
      for (int64_t VX = -10; VX <= 10 && !Expected; ++VX)
        Expected = 4 * VX >= VZ && 3 * VX <= VY;
      bool Got = evaluate(R, [&](VarId V) { return V == Z ? VZ : VY; });
      EXPECT_EQ(Got, Expected) << "z=" << VZ << " y=" << VY;
    }
}

TEST_F(CooperTest, ModelFinderBasics) {
  std::unordered_map<VarId, int64_t> Model;
  const Formula *F = M.mkAnd({M.mkGe(x(), c(3)), M.mkLe(x(), c(3)),
                              M.mkEq(y(), x().scaled(2))});
  ASSERT_TRUE(findModelByQe(M, F, Model));
  EXPECT_EQ(Model.at(X), 3);
  EXPECT_EQ(Model.at(Y), 6);
}

TEST_F(CooperTest, ModelFinderUnsat) {
  std::unordered_map<VarId, int64_t> Model;
  const Formula *F = M.mkAnd(M.mkGe(x(), c(3)), M.mkLe(x(), c(2)));
  EXPECT_FALSE(findModelByQe(M, F, Model));
}

TEST_F(CooperTest, ModelFinderParity) {
  std::unordered_map<VarId, int64_t> Model;
  // 2x = 2y + 1 is the classic branch-and-bound diverger.
  const Formula *F = M.mkEq(x(2), y(2).addConst(1));
  EXPECT_FALSE(findModelByQe(M, F, Model));
}

TEST_F(CooperTest, ModelFinderDivisibility) {
  std::unordered_map<VarId, int64_t> Model;
  const Formula *F = M.mkAnd({M.mkDiv(7, x()), M.mkGe(x(), c(15)),
                              M.mkLe(x(), c(30)), M.mkNe(x(), c(21))});
  ASSERT_TRUE(findModelByQe(M, F, Model));
  EXPECT_EQ(Model.at(X), 28);
}

// Property: ∃x.F computed by QE agrees with a bounded existential check,
// for random F whose other variable is boxed.
TEST_F(CooperTest, PropertyQeAgreesWithEnumeration) {
  Rng R(555);
  for (int Round = 0; Round < 120; ++Round) {
    std::vector<const Formula *> Parts;
    int N = static_cast<int>(R.range(1, 3));
    for (int I = 0; I < N; ++I) {
      LinearExpr E = x(R.range(-3, 3)).add(y(R.range(-2, 2)))
                         .addConst(R.range(-4, 4));
      if (R.chance(0.25))
        Parts.push_back(M.mkAtom(AtomRel::Div, E, R.range(2, 3)));
      else
        Parts.push_back(M.mkAtom(AtomRel::Le, E));
    }
    const Formula *Core =
        R.chance(0.5) ? M.mkAnd(Parts) : M.mkOr(Parts);
    // Keep x bounded so enumeration is sound: the formula constrains x
    // within [-12, 12] via explicit bounds.
    const Formula *F =
        M.mkAnd({Core, M.mkGe(x(), c(-12)), M.mkLe(x(), c(12))});
    const Formula *R1 = eliminateExists(M, F, X);
    ASSERT_FALSE(containsVar(R1, X));
    for (int64_t VY = -6; VY <= 6; VY += 3) {
      bool Expected = false;
      for (int64_t VX = -12; VX <= 12 && !Expected; ++VX)
        Expected =
            evaluate(F, [&](VarId V) { return V == X ? VX : VY; });
      bool Got = evaluate(R1, [&](VarId V) {
        EXPECT_EQ(V, Y);
        (void)V;
        return VY;
      });
      ASSERT_EQ(Got, Expected) << "round " << Round << " y=" << VY;
    }
  }
}

} // namespace

namespace {

// Direct tests for the conjunction-specialized complete solver (the theory
// solver's fallback when branch-and-bound exhausts its budget).
class ConjunctionSolverTest : public ::testing::Test {
protected:
  FormulaManager M;
  VarId X = M.vars().create("cx", VarKind::Input);
  VarId Y = M.vars().create("cy", VarKind::Input);
  VarId Z = M.vars().create("cz", VarKind::Input);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr z(int64_t C = 1) { return LinearExpr::variable(Z, C); }

  bool solve(std::vector<const Formula *> Atoms,
             std::unordered_map<VarId, int64_t> *Out = nullptr) {
    std::unordered_map<VarId, int64_t> Model;
    bool R = solveAtomConjunction(M, Atoms, Model);
    if (R) {
      // Any returned model must satisfy every atom (defaulting missing
      // variables to 0).
      for (const Formula *A : Atoms)
        EXPECT_TRUE(evaluate(A, [&](VarId V) {
          auto It = Model.find(V);
          return It == Model.end() ? int64_t(0) : It->second;
        }));
    }
    if (Out)
      *Out = Model;
    return R;
  }
};

TEST_F(ConjunctionSolverTest, EmptyAndConstants) {
  EXPECT_TRUE(solve({}));
  EXPECT_TRUE(solve({M.getTrue()}));
  EXPECT_FALSE(solve({M.getFalse()}));
}

TEST_F(ConjunctionSolverTest, BoundedBox) {
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkAtom(AtomRel::Le, x().addConst(-7)),
                     M.mkAtom(AtomRel::Le, x(-1).addConst(5))},
                    &Model));
  EXPECT_GE(Model.at(X), 5);
  EXPECT_LE(Model.at(X), 7);
}

TEST_F(ConjunctionSolverTest, InfeasibleBounds) {
  EXPECT_FALSE(solve({M.mkAtom(AtomRel::Le, x().addConst(-2)),
                      M.mkAtom(AtomRel::Le, x(-1).addConst(3))}));
}

TEST_F(ConjunctionSolverTest, DivisibilityChain) {
  // 6 | x, 10 | x, 20 <= x <= 40 forces x = 30.
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkDiv(6, x()), M.mkDiv(10, x()),
                     M.mkAtom(AtomRel::Le, x(-1).addConst(20)),
                     M.mkAtom(AtomRel::Le, x().addConst(-40))},
                    &Model));
  EXPECT_EQ(Model.at(X), 30);
}

TEST_F(ConjunctionSolverTest, NonDivisibility) {
  // 2 ∤ x with 4 <= x <= 5 forces x = 5.
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkAtom(AtomRel::NDiv, x(), 2),
                     M.mkAtom(AtomRel::Le, x(-1).addConst(4)),
                     M.mkAtom(AtomRel::Le, x().addConst(-5))},
                    &Model));
  EXPECT_EQ(Model.at(X), 5);
}

TEST_F(ConjunctionSolverTest, ResidueConflict) {
  // x ≡ 0 (mod 3) and x ≡ 1 (mod 3) is unsatisfiable: 3 | x and 3 | (x-1).
  EXPECT_FALSE(solve({M.mkDiv(3, x()), M.mkDiv(3, x().addConst(-1))}));
}

TEST_F(ConjunctionSolverTest, UnboundedWithDivisors) {
  // Only divisibility constraints: solvable via the residue-only case.
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkDiv(4, x().add(y()))}, &Model));
}

TEST_F(ConjunctionSolverTest, CoefficientScaling) {
  // 3x = 2y + 1 (as two Le atoms) with 0 <= y <= 10: x odd multiples.
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkAtom(AtomRel::Le, x(3).sub(y(2)).addConst(-1)),
                     M.mkAtom(AtomRel::Le, x(-3).add(y(2)).addConst(1)),
                     M.mkAtom(AtomRel::Le, y(-1)),
                     M.mkAtom(AtomRel::Le, y().addConst(-10))},
                    &Model));
  EXPECT_EQ(3 * Model.at(X), 2 * Model.at(Y) + 1);
}

TEST_F(ConjunctionSolverTest, ParityDiverger) {
  // 2x = 2y + 1: the classic branch-and-bound diverger must be rejected.
  EXPECT_FALSE(solve({M.mkAtom(AtomRel::Le, x(2).sub(y(2)).addConst(-1)),
                      M.mkAtom(AtomRel::Le, x(-2).add(y(2)).addConst(1))}));
}

TEST_F(ConjunctionSolverTest, ThreeVariableSystem) {
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_TRUE(solve({M.mkAtom(AtomRel::Le, x().add(y()).add(z()).addConst(-6)),
                     M.mkAtom(AtomRel::Le,
                              x(-1).sub(y()).sub(z()).addConst(6)),
                     M.mkDiv(2, x()), M.mkDiv(3, y()),
                     M.mkAtom(AtomRel::Le, z(-1).addConst(1))},
                    &Model));
}

} // namespace
