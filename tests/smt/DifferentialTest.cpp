//===- tests/smt/DifferentialTest.cpp - Cross-check our stack vs Z3 ---------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing: random LIA formulas are decided by both our SMT
/// stack and Z3, and our quantifier elimination results are checked
/// equivalent to the originals by Z3. This validates the whole substrate
/// the abduction engine stands on.
///
//===----------------------------------------------------------------------===//

#include "smt/Z3Backend.h"

#include "smt/NativeBackend.h"

#include "smt/Cooper.h"
#include "smt/Printer.h"
#include "smt/Simplify.h"
#include "smt/FormulaOps.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <z3++.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Builds a random NNF formula over \p Vars.
const Formula *randomFormula(FormulaManager &M, Rng &R,
                             const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.7))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    switch (R.range(0, 4)) {
    case 0:
      return M.mkAtom(AtomRel::Le, E);
    case 1:
      return M.mkAtom(AtomRel::Eq, E);
    case 2:
      return M.mkAtom(AtomRel::Ne, E);
    case 3:
      return M.mkAtom(AtomRel::Div, E, R.range(2, 4));
    default:
      return M.mkAtom(AtomRel::NDiv, E, R.range(2, 4));
    }
  }
  std::vector<const Formula *> Kids;
  int N = static_cast<int>(R.range(2, 3));
  for (int I = 0; I < N; ++I)
    Kids.push_back(randomFormula(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

TEST(DifferentialTest, SatAgreesWithZ3OnRandomFormulas) {
  FormulaManager M;
  Solver S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Abstraction)};
  Rng R(31337);
  for (int Round = 0; Round < 250; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    bool Ours = S.isSat(F);
    bool Z3s = z3IsSat(M, F);
    ASSERT_EQ(Ours, Z3s) << "round " << Round;
  }
}

TEST(DifferentialTest, ModelsSatisfyFormulas) {
  FormulaManager M;
  Solver S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input)};
  Rng R(77);
  for (int Round = 0; Round < 250; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    Model Mo;
    if (S.isSat(F, &Mo)) {
      EXPECT_TRUE(evaluate(F, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      })) << "round " << Round;
    }
  }
}

TEST(DifferentialTest, ExistsEliminationEquivalentPerZ3) {
  FormulaManager M;
  Solver S(M);
  VarId X = M.vars().create("x", VarKind::Input);
  std::vector<VarId> Vars = {X, M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  Rng R(4242);
  for (int Round = 0; Round < 60; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    const Formula *Elim = eliminateExists(M, F, X);
    ASSERT_FALSE(containsVar(Elim, X));
    // Z3 check: Elim <=> F with X existential. Since our formulas are
    // quantifier-free, verify both directions as satisfiability queries:
    //  (a) F => Elim must be valid (F |= ∃x.F as Elim has no x);
    //  (b) Elim && ¬F[x:=c] for all c -- instead check Elim => ∃x.F by
    //      sampling: a model of Elim && ¬(F[x:=-20..20]) would be suspect.
    EXPECT_FALSE(z3IsSat(M, M.mkAnd(F, M.mkNot(Elim))))
        << "round " << Round << ": F does not imply eliminated formula";
    // Direction (b) exactly, via our complete model finder: any model of
    // Elim must extend to a model of F for some x.
    Model Mo;
    if (S.isSat(Elim, &Mo)) {
      std::unordered_map<VarId, LinearExpr> Subst;
      for (VarId V : freeVars(Elim))
        Subst.emplace(V, LinearExpr::constant(
                             Mo.count(V) ? Mo.at(V) : 0));
      const Formula *FAtModel = substitute(M, F, Subst);
      EXPECT_TRUE(z3IsSat(M, FAtModel))
          << "round " << Round << ": eliminated formula too weak";
    }
  }
}

TEST(DifferentialTest, ForallEliminationEquivalentPerZ3) {
  FormulaManager M;
  Solver S(M);
  VarId X = M.vars().create("x", VarKind::Input);
  std::vector<VarId> Vars = {X, M.vars().create("y", VarKind::Input)};
  Rng R(987);
  for (int Round = 0; Round < 60; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    const Formula *Elim = eliminateForall(M, F, X);
    ASSERT_FALSE(containsVar(Elim, X));
    // Elim => F[x:=c] for every c: check a few instances via Z3.
    for (int64_t C = -7; C <= 7; C += 7) {
      const Formula *Inst = substitute(M, F, X, LinearExpr::constant(C));
      EXPECT_FALSE(z3IsSat(M, M.mkAnd(Elim, M.mkNot(Inst))))
          << "round " << Round << " c=" << C;
    }
    // Conversely, ¬Elim must imply ∃x.¬F; use our model finder to confirm.
    Model Mo;
    if (S.isSat(M.mkNot(Elim), &Mo)) {
      std::unordered_map<VarId, LinearExpr> Subst;
      for (VarId V : freeVars(Elim))
        Subst.emplace(V, LinearExpr::constant(Mo.count(V) ? Mo.at(V) : 0));
      const Formula *FAtModel = substitute(M, F, Subst);
      EXPECT_TRUE(z3IsSat(M, M.mkNot(FAtModel)))
          << "round " << Round << ": forall-eliminated formula too strong";
    }
  }
}

TEST(DifferentialTest, MemoizedQeEqualsUncachedQe) {
  // The solver's QE memo must be invisible: memoized universal elimination
  // returns the identical (hash-consed) formula as a from-scratch run, for
  // fresh and repeated (formula, variable-set) queries alike.
  FormulaManager M;
  Solver S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Abstraction)};
  Rng R(24601);
  std::vector<std::pair<const Formula *, std::vector<VarId>>> History;
  for (int Round = 0; Round < 40; ++Round) {
    const Formula *F;
    std::vector<VarId> Xs;
    if (Round % 3 == 2 && !History.empty()) {
      // Replay an earlier query verbatim to exercise full-chain hits.
      const auto &Prev = History[R.range(0, History.size() - 1)];
      F = Prev.first;
      Xs = Prev.second;
    } else {
      // Depth 1 and at most two eliminated variables: formula-level Cooper
      // on larger random instances can blow up, and the memo's correctness
      // is independent of instance size.
      F = randomFormula(M, R, Vars, 1);
      for (VarId V : Vars)
        if (Xs.size() < 2 && R.chance(0.6))
          Xs.push_back(V);
    }
    History.emplace_back(F, Xs);
    EXPECT_EQ(S.eliminateForallCached(F, Xs), eliminateForall(M, F, Xs))
        << "round " << Round;
  }
  EXPECT_GT(S.stats().QeCacheHits, 0u) << "replayed QE never hit the memo";
  EXPECT_GT(S.stats().QeCacheMisses, 0u);
  // With caching off the entry point is plain eliminateForall and the
  // counters stay untouched.
  S.resetStats();
  S.setCaching(false);
  const Formula *F = randomFormula(M, R, Vars, 1);
  std::vector<VarId> Two(Vars.begin(), Vars.begin() + 2);
  EXPECT_EQ(S.eliminateForallCached(F, Two), eliminateForall(M, F, Two));
  EXPECT_EQ(S.stats().QeCacheHits + S.stats().QeCacheMisses, 0u);
}

TEST(DifferentialTest, CachedVerdictsEqualFreshSolverVerdicts) {
  // The verdict cache must be invisible: a caching solver and a cache-less
  // solver over the same manager agree on every randomized formula, repeat
  // queries are answered from the cache, and cached models still satisfy.
  FormulaManager M;
  Solver Cached(M), Fresh(M);
  Fresh.setCaching(false);
  ASSERT_TRUE(Cached.cachingEnabled());
  ASSERT_FALSE(Fresh.cachingEnabled());
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Abstraction)};
  Rng R(112358);
  std::vector<const Formula *> History;
  for (int Round = 0; Round < 150; ++Round) {
    // Re-query an earlier formula every few rounds to exercise hits.
    const Formula *F = (Round % 3 == 2 && !History.empty())
                           ? History[R.range(0, History.size() - 1)]
                           : randomFormula(M, R, Vars, 2);
    History.push_back(F);
    Model Mo;
    bool CachedRes = Cached.isSat(F, &Mo);
    ASSERT_EQ(CachedRes, Fresh.isSat(F)) << "round " << Round;
    if (CachedRes) {
      EXPECT_TRUE(evaluate(F, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      })) << "round " << Round << ": cached model does not satisfy";
    }
  }
  const Solver::Stats &St = Cached.stats();
  EXPECT_GT(St.CacheHits, 0u) << "repeat queries never hit the cache";
  // Trivially true/false formulas are answered before the cache, so the
  // cache counters cover at most (not exactly) the query count.
  EXPECT_LE(St.CacheHits + St.CacheMisses, St.Queries);
  EXPECT_GT(St.CacheMisses, 0u);
  EXPECT_EQ(Fresh.stats().CacheHits, 0u);
}

TEST(DifferentialTest, SessionChecksEqualStatelessVerdicts) {
  // An incremental Session deciding random conjunction sets (with heavy
  // conjunct reuse across checks, as in the MSA subset search) must agree
  // with one-shot isSat on the conjunction, and its models must satisfy.
  FormulaManager M;
  Solver S(M);
  S.setCaching(false); // compare raw session vs raw one-shot decisions
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  Rng R(271828);
  std::vector<const Formula *> Pool;
  for (int I = 0; I < 12; ++I)
    Pool.push_back(randomFormula(M, R, Vars, 2));
  Solver::Session Sess(S);
  for (int Round = 0; Round < 120; ++Round) {
    std::vector<const Formula *> Conj;
    int N = static_cast<int>(R.range(1, 4));
    for (int I = 0; I < N; ++I)
      Conj.push_back(Pool[R.range(0, Pool.size() - 1)]);
    Model Mo;
    bool SessRes = Sess.check(Conj, &Mo);
    bool FreshRes = S.isSat(M.mkAnd(std::vector<const Formula *>(Conj)));
    ASSERT_EQ(SessRes, FreshRes) << "round " << Round;
    if (SessRes) {
      for (const Formula *F : Conj) {
        EXPECT_TRUE(evaluate(F, [&](VarId V) {
          auto It = Mo.find(V);
          return It == Mo.end() ? int64_t(0) : It->second;
        })) << "round " << Round << ": session model violates a conjunct";
      }
    } else {
      // The reported core must itself be unsat (per Z3) and be a subset of
      // the conjuncts.
      const std::vector<const Formula *> &Core = Sess.lastCore();
      for (const Formula *C : Core) {
        EXPECT_NE(std::find(Conj.begin(), Conj.end(), C), Conj.end());
      }
      if (!Core.empty()) {
        EXPECT_FALSE(z3IsSat(
            M, M.mkAnd(std::vector<const Formula *>(Core.begin(), Core.end()))))
            << "round " << Round << ": session core is satisfiable";
      }
    }
  }
  EXPECT_GT(S.stats().SessionChecks, 0u);
}

TEST(DifferentialTest, ValidityAgreesWithZ3) {
  FormulaManager M;
  Solver S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input)};
  Rng R(2718);
  for (int Round = 0; Round < 150; ++Round) {
    const Formula *A = randomFormula(M, R, Vars, 1);
    const Formula *B = randomFormula(M, R, Vars, 1);
    EXPECT_EQ(S.entails(A, B), !z3IsSat(M, M.mkAnd(A, M.mkNot(B))))
        << "round " << Round;
  }
}

} // namespace

namespace {

TEST(DifferentialTest, SimplifyModuloPreservesEquivalencePerZ3) {
  FormulaManager M;
  NativeBackend S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Abstraction)};
  Rng R(1357);
  for (int Round = 0; Round < 60; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    const Formula *Critical = randomFormula(M, R, Vars, 1);
    const Formula *Simplified = simplifyModulo(S, F, Critical);
    // Critical |= (F <=> Simplified), checked by Z3.
    const Formula *Violation =
        M.mkAnd(Critical, M.mkNot(M.mkIff(F, Simplified)));
    EXPECT_FALSE(z3IsSat(M, Violation))
        << "round " << Round << ": simplification changed meaning";
    EXPECT_LE(atomCount(Simplified), atomCount(F)) << "round " << Round;
  }
}

TEST(DifferentialTest, ConjunctionSolverAgreesWithZ3) {
  FormulaManager M;
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  Rng R(8080);
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<const Formula *> Atoms;
    int N = static_cast<int>(R.range(2, 6));
    for (int I = 0; I < N; ++I) {
      LinearExpr E = LinearExpr::constant(R.range(-8, 8));
      for (VarId V : Vars)
        if (R.chance(0.6))
          E = E.add(LinearExpr::variable(V, R.range(-4, 4)));
      if (R.chance(0.3))
        Atoms.push_back(M.mkAtom(R.chance(0.5) ? AtomRel::Div : AtomRel::NDiv,
                                 E, R.range(2, 5)));
      else
        Atoms.push_back(M.mkAtom(AtomRel::Le, E));
    }
    std::unordered_map<VarId, int64_t> Model;
    bool Ours = solveAtomConjunction(M, Atoms, Model);
    bool Z3s = z3IsSat(M, M.mkAnd(std::vector<const Formula *>(Atoms)));
    ASSERT_EQ(Ours, Z3s) << "round " << Round;
  }
}

} // namespace

namespace {

TEST(DifferentialTest, SmtLibPrinterAcceptedByZ3) {
  // The SMT-LIB2 printer's output must be parseable by Z3 and agree on
  // satisfiability with our solver.
  FormulaManager M;
  Solver S(M);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y@loop1", VarKind::Abstraction)};
  Rng R(31415);
  for (int Round = 0; Round < 60; ++Round) {
    const Formula *F = randomFormula(M, R, Vars, 2);
    std::string Script = toSmtLib(F, M.vars());
    z3::context C;
    z3::solver Z(C);
    Z.from_string(Script.c_str());
    z3::check_result CR = Z.check();
    ASSERT_NE(CR, z3::unknown) << Script;
    EXPECT_EQ(CR == z3::sat, S.isSat(F)) << "round " << Round << "\n"
                                         << Script;
  }
}

} // namespace
