//===- tests/smt/FormulaParserTest.cpp - Formula text syntax tests ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/FormulaParser.h"

#include "smt/FormulaOps.h"
#include "smt/Printer.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class FormulaParserTest : public ::testing::Test {
protected:
  FormulaManager M;
  Solver S{M};
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);

  const Formula *parse(const char *Text) {
    FormulaParseResult R = parseFormula(M, Text);
    EXPECT_TRUE(R.ok()) << Text << ": " << R.Error;
    return R.F;
  }
};

TEST_F(FormulaParserTest, Constants) {
  EXPECT_TRUE(parse("true")->isTrue());
  EXPECT_TRUE(parse("false")->isFalse());
  EXPECT_TRUE(parse("1 <= 2")->isTrue());
  EXPECT_TRUE(parse("2 <= 1")->isFalse());
}

TEST_F(FormulaParserTest, SimpleComparisons) {
  EXPECT_EQ(parse("x <= 3"), M.mkLe(LinearExpr::variable(X),
                                    LinearExpr::constant(3)));
  EXPECT_EQ(parse("x < 3"), M.mkLt(LinearExpr::variable(X),
                                   LinearExpr::constant(3)));
  EXPECT_EQ(parse("x >= y"), M.mkGe(LinearExpr::variable(X),
                                    LinearExpr::variable(Y)));
  EXPECT_EQ(parse("x = 0"), parse("x == 0"));
  EXPECT_EQ(parse("x != y"), M.mkNe(LinearExpr::variable(X),
                                    LinearExpr::variable(Y)));
}

TEST_F(FormulaParserTest, LinearExpressions) {
  // 2*x - y + 3 <= 0.
  const Formula *F = parse("2*x - y + 3 <= 0");
  ASSERT_TRUE(F->isAtom());
  EXPECT_EQ(F->expr().coeff(X), 2);
  EXPECT_EQ(F->expr().coeff(Y), -1);
  EXPECT_EQ(F->expr().constant(), 3);
  // Leading minus and parenthesized arithmetic.
  EXPECT_EQ(parse("-x <= 5"), M.mkGe(LinearExpr::variable(X),
                                     LinearExpr::constant(-5)));
  EXPECT_EQ(parse("(x + 1) <= y"), parse("x + 1 <= y"));
}

TEST_F(FormulaParserTest, BooleanStructure) {
  const Formula *F = parse("x <= 0 && (y >= 1 || x != y)");
  EXPECT_TRUE(F->isAnd());
  const Formula *G = parse("!(x <= 0)");
  EXPECT_EQ(G, M.mkGe(LinearExpr::variable(X), LinearExpr::constant(1)));
}

TEST_F(FormulaParserTest, Divisibility) {
  EXPECT_EQ(parse("3 | (x + 1)"),
            M.mkDiv(3, LinearExpr::variable(X).addConst(1)));
  EXPECT_EQ(parse("!(3 | (x))"),
            M.mkAtom(AtomRel::NDiv, LinearExpr::variable(X), 3));
}

TEST_F(FormulaParserTest, UnknownVariablePolicies) {
  FormulaParseOptions NoCreate;
  NoCreate.CreateUnknownVars = false;
  FormulaParseResult R = parseFormula(M, "zz <= 0", NoCreate);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown variable"), std::string::npos);

  FormulaParseOptions Create;
  Create.NewVarKind = VarKind::Abstraction;
  FormulaParseResult R2 = parseFormula(M, "alpha_new <= 0", Create);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(M.vars().kind(M.vars().lookup("alpha_new")),
            VarKind::Abstraction);
}

TEST_F(FormulaParserTest, Errors) {
  EXPECT_FALSE(parseFormula(M, "x +").ok());
  EXPECT_FALSE(parseFormula(M, "x <= 1 extra").ok());
  EXPECT_FALSE(parseFormula(M, "x $ 1").ok());
  EXPECT_FALSE(parseFormula(M, "0 | (x)").ok());
  EXPECT_FALSE(parseFormula(M, "").ok());
}

TEST_F(FormulaParserTest, AnalysisStyleNames) {
  const Formula *F = parse("j@loop1 >= n2 && mul@1 >= 0");
  EXPECT_TRUE(F->isAnd());
  EXPECT_NE(M.vars().lookup("j@loop1"), ~0u);
}

// Property: printing and re-parsing any random formula yields an equivalent
// formula (round trip through the human-readable syntax).
TEST_F(FormulaParserTest, PropertyPrintParseRoundTrip) {
  Rng R(777);
  std::vector<VarId> Vars = {X, Y, M.vars().create("z", VarKind::Abstraction)};
  for (int Round = 0; Round < 200; ++Round) {
    // Random NNF formula (same shape as the differential tests).
    std::function<const Formula *(int)> Rand = [&](int Depth) -> const Formula * {
      if (Depth == 0 || R.chance(0.4)) {
        LinearExpr E = LinearExpr::constant(R.range(-6, 6));
        for (VarId V : Vars)
          if (R.chance(0.6))
            E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
        switch (R.range(0, 3)) {
        case 0:
          return M.mkAtom(AtomRel::Le, E);
        case 1:
          return M.mkAtom(AtomRel::Eq, E);
        case 2:
          return M.mkAtom(AtomRel::Ne, E);
        default:
          return M.mkAtom(AtomRel::Div, E, R.range(2, 4));
        }
      }
      std::vector<const Formula *> Kids;
      for (int I = 0, N = static_cast<int>(R.range(2, 3)); I < N; ++I)
        Kids.push_back(Rand(Depth - 1));
      return R.chance(0.5) ? M.mkAnd(std::move(Kids))
                           : M.mkOr(std::move(Kids));
    };
    const Formula *F = Rand(2);
    std::string Text = toString(F, M.vars());
    FormulaParseResult P = parseFormula(M, Text);
    ASSERT_TRUE(P.ok()) << "round " << Round << ": " << Text << "\n"
                        << P.Error;
    // Canonicalization makes most round trips pointer-identical; all must
    // at least be logically equivalent.
    EXPECT_TRUE(S.equivalent(F, P.F))
        << "round " << Round << ": " << Text << " reparsed as "
        << toString(P.F, M.vars());
  }
}

} // namespace
