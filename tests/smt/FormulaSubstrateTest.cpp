//===- tests/smt/FormulaSubstrateTest.cpp - Substrate invariant tests ------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Invariants of the arena-interned formula substrate: construction-order
// independence of hash-consing, pointer stability across arena and intern
// table growth, linear (DAG, not tree) work for the memoized structural
// ops on deeply shared formulas, and the substitution fast paths.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"

#include "smt/FormulaOps.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Builds a depth-\p Depth balanced DAG where each level reuses the previous
/// level twice: N_{i+1} = And(Or(N_i, a_i + x - (i+1) <= 0),
///                            Or(N_i, b_i - x + (i+1) <= 0)).
/// The tree expansion has ~2^Depth atom occurrences; the DAG has O(Depth)
/// distinct nodes.
const Formula *buildSharedDag(FormulaManager &M, VarId X, int Depth,
                              std::vector<VarId> *SideVars = nullptr) {
  LinearExpr XE = LinearExpr::variable(X);
  const Formula *N = M.mkAtom(AtomRel::Le, XE);
  for (int I = 0; I < Depth; ++I) {
    VarId A = M.vars().getOrCreate("a" + std::to_string(I), VarKind::Input);
    VarId B = M.vars().getOrCreate("b" + std::to_string(I), VarKind::Input);
    if (SideVars) {
      SideVars->push_back(A);
      SideVars->push_back(B);
    }
    const Formula *L = M.mkOr(
        N, M.mkAtom(AtomRel::Le, LinearExpr::variable(A).add(XE).addConst(
                                     -(int64_t)(I + 1))));
    const Formula *R = M.mkOr(
        N, M.mkAtom(AtomRel::Le, LinearExpr::variable(B).sub(XE).addConst(
                                     (int64_t)(I + 1))));
    N = M.mkAnd(L, R);
  }
  return N;
}

TEST(FormulaSubstrateTest, InterningIsConstructionOrderIndependent) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);
  LinearExpr XE = LinearExpr::variable(X), YE = LinearExpr::variable(Y);

  // Build the same formula twice with kid construction interleaved
  // differently; hash-consing must yield the same node either way.
  const Formula *A1 = M.mkLe(XE, LinearExpr::constant(3));
  const Formula *B1 = M.mkLe(YE, XE);
  const Formula *F1 = M.mkOr(M.mkAnd(A1, B1), M.mkAnd(A1, M.mkNot(B1)));

  const Formula *B2 = M.mkLe(YE, XE);
  const Formula *A2 = M.mkLe(XE, LinearExpr::constant(3));
  const Formula *F2 = M.mkOr(M.mkAnd(M.mkNot(B2), A2), M.mkAnd(B2, A2));

  EXPECT_EQ(A1, A2);
  EXPECT_EQ(B1, B2);
  EXPECT_EQ(F1, F2) << "pointer equality must be structural equality";
}

TEST(FormulaSubstrateTest, PointerStabilityAcrossGrowth) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);

  // Pin down early nodes, then intern enough distinct atoms to force many
  // arena block allocations and several intern-table growth cycles.
  const Formula *Early = M.mkLe(LinearExpr::variable(X),
                                LinearExpr::constant(-7));
  size_t EarlyHash = Early->hash();
  uint32_t EarlyId = Early->id();

  std::vector<const Formula *> Pinned;
  for (int I = 0; I < 5000; ++I)
    Pinned.push_back(
        M.mkLe(LinearExpr::variable(X), LinearExpr::constant(I)));
  ASSERT_GT(M.stats().ArenaBytes, support::Arena::DefaultBlockBytes)
      << "test must actually outgrow the first arena block";

  // The early node must still be found by interning (same pointer) and must
  // be untouched by the growth.
  EXPECT_EQ(Early, M.mkLe(LinearExpr::variable(X), LinearExpr::constant(-7)));
  EXPECT_EQ(Early->hash(), EarlyHash);
  EXPECT_EQ(Early->id(), EarlyId);
  for (int I = 0; I < 5000; ++I)
    EXPECT_EQ(Pinned[I],
              M.mkLe(LinearExpr::variable(X), LinearExpr::constant(I)));
}

TEST(FormulaSubstrateTest, DeepSharedDagOpsAreLinear) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  constexpr int Depth = 40; // tree expansion ~2^40 atoms; DAG ~5*40 nodes
  const Formula *F = buildSharedDag(M, X, Depth);

  uint64_t NodesBefore = M.stats().NodesInterned;
  uint64_t MissesBefore = M.stats().MemoMisses;

  // freeVars: one memo entry per distinct node, not per tree occurrence.
  const std::vector<VarId> &FV = freeVarsVec(F);
  EXPECT_EQ(FV.size(), 1u + 2u * Depth);
  uint64_t MissesAfterFv = M.stats().MemoMisses;
  EXPECT_LE(MissesAfterFv - MissesBefore, M.numNodes())
      << "free-vars pass must be bounded by the DAG size";

  // containsVar for every variable is served from the cached vectors.
  for (VarId V : FV)
    EXPECT_TRUE(containsVar(F, V));
  EXPECT_EQ(M.stats().MemoMisses, MissesAfterFv)
      << "containsVar after freeVars must be pure memo hits";

  // atomCount saturates instead of overflowing on the ~2^40 expansion but
  // still answers from a linear pass.
  size_t Count = atomCount(F);
  EXPECT_GT(Count, size_t(1) << 39);

  // Substitution rebuilds each distinct node once: the number of *new*
  // nodes interned is bounded by a small multiple of the DAG size, nowhere
  // near the tree expansion.
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(X, LinearExpr::variable(
                     M.vars().create("z", VarKind::Input)));
  const Formula *G = M.substitute(F, Map);
  EXPECT_NE(G, F);
  uint64_t NodesAfter = M.stats().NodesInterned;
  EXPECT_LE(NodesAfter - NodesBefore, 8u * Depth + 16u)
      << "substitution must do DAG-proportional work";
  EXPECT_FALSE(containsVar(G, X));
}

TEST(FormulaSubstrateTest, SubstituteEmptyMapReturnsSelf) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  const Formula *F = buildSharedDag(M, X, 6);
  std::unordered_map<VarId, LinearExpr> Empty;
  uint64_t PrunesBefore = M.stats().SubstPrunes;
  EXPECT_EQ(M.substitute(F, Empty), F);
  EXPECT_GT(M.stats().SubstPrunes, PrunesBefore);
}

TEST(FormulaSubstrateTest, SubstituteDisjointDomainReturnsSelf) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  const Formula *F = buildSharedDag(M, X, 6);
  VarId U = M.vars().create("unrelated", VarKind::Input);
  VarId W = M.vars().create("w", VarKind::Input);
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(U, LinearExpr::variable(W).addConst(1));
  uint64_t NodesBefore = M.stats().NodesInterned;
  EXPECT_EQ(M.substitute(F, Map), F)
      << "domain disjoint from freeVars(F) must return F unchanged";
  EXPECT_EQ(M.stats().NodesInterned, NodesBefore)
      << "disjoint substitution must not intern anything";
}

TEST(FormulaSubstrateTest, SubstituteSharedSubtreeRebuiltOnce) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Z = M.vars().create("z", VarKind::Input);
  const Formula *F = buildSharedDag(M, X, 20);
  // Renaming X to Z on a depth-20 shared DAG: without per-call memoization
  // this would rebuild ~2^20 nodes and take visibly long; with it, the
  // intern traffic stays DAG-sized.
  uint64_t HitsBefore = M.stats().MemoHits;
  const Formula *G = substitute(M, F, X, LinearExpr::variable(Z));
  EXPECT_TRUE(containsVar(G, Z));
  EXPECT_GT(M.stats().MemoHits, HitsBefore)
      << "shared kids must be served from the per-call substitution memo";
}

TEST(FormulaSubstrateTest, StatsCountersAdvance) {
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  EXPECT_GT(M.stats().NodesInterned, 0u) << "True/False are interned";
  const Formula *A = M.mkLe(LinearExpr::variable(X), LinearExpr::constant(1));
  uint64_t Hits = M.stats().InternHits;
  const Formula *B = M.mkLe(LinearExpr::variable(X), LinearExpr::constant(1));
  EXPECT_EQ(A, B);
  EXPECT_GT(M.stats().InternHits, Hits);
  EXPECT_GT(M.stats().ArenaBytes, 0u);
}

} // namespace
