//===- tests/smt/FormulaTest.cpp - Formula construction unit tests ---------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"

#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class FormulaTest : public ::testing::Test {
protected:
  FormulaManager M;
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);

  LinearExpr x() { return LinearExpr::variable(X); }
  LinearExpr y() { return LinearExpr::variable(Y); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }
};

TEST_F(FormulaTest, HashConsingSharesNodes) {
  const Formula *A = M.mkLe(x(), c(5));
  const Formula *B = M.mkLe(x(), c(5));
  EXPECT_EQ(A, B);
  const Formula *C1 = M.mkAnd(A, M.mkLe(y(), c(0)));
  const Formula *C2 = M.mkAnd(M.mkLe(y(), c(0)), B);
  EXPECT_EQ(C1, C2) << "And children are canonically ordered";
}

TEST_F(FormulaTest, ConstantAtomsFold) {
  EXPECT_TRUE(M.mkLe(c(1), c(2))->isTrue());
  EXPECT_TRUE(M.mkLe(c(3), c(2))->isFalse());
  EXPECT_TRUE(M.mkEq(c(2), c(2))->isTrue());
  EXPECT_TRUE(M.mkNe(c(2), c(2))->isFalse());
  EXPECT_TRUE(M.mkDiv(3, c(9))->isTrue());
  EXPECT_TRUE(M.mkDiv(3, c(10))->isFalse());
  EXPECT_TRUE(M.mkDiv(1, x())->isTrue());
}

TEST_F(FormulaTest, GcdTighteningOnLe) {
  // 2x <= 5 tightens to x <= 2.
  const Formula *A = M.mkLe(x().scaled(2), c(5));
  const Formula *B = M.mkLe(x(), c(2));
  EXPECT_EQ(A, B);
}

TEST_F(FormulaTest, GcdInfeasibleEquality) {
  // 2x = 5 is false over the integers.
  EXPECT_TRUE(M.mkEq(x().scaled(2), c(5))->isFalse());
  EXPECT_TRUE(M.mkNe(x().scaled(2), c(5))->isTrue());
}

TEST_F(FormulaTest, EqualitySignNormalized) {
  EXPECT_EQ(M.mkEq(x(), y()), M.mkEq(y(), x()));
}

TEST_F(FormulaTest, AndOrUnitRules) {
  const Formula *A = M.mkLe(x(), c(0));
  EXPECT_EQ(M.mkAnd(A, M.getTrue()), A);
  EXPECT_TRUE(M.mkAnd(A, M.getFalse())->isFalse());
  EXPECT_EQ(M.mkOr(A, M.getFalse()), A);
  EXPECT_TRUE(M.mkOr(A, M.getTrue())->isTrue());
  EXPECT_EQ(M.mkAnd(A, A), A);
}

TEST_F(FormulaTest, ComplementaryLiterals) {
  const Formula *A = M.mkLe(x(), c(0));
  EXPECT_TRUE(M.mkAnd(A, M.mkNot(A))->isFalse());
  EXPECT_TRUE(M.mkOr(A, M.mkNot(A))->isTrue());
}

TEST_F(FormulaTest, FlatteningNestedSameKind) {
  const Formula *A = M.mkLe(x(), c(0));
  const Formula *B = M.mkLe(y(), c(0));
  const Formula *C1 = M.mkLe(x(), c(-3));
  const Formula *Nested = M.mkAnd(A, M.mkAnd(B, C1));
  EXPECT_EQ(Nested->kids().size(), 3u);
}

TEST_F(FormulaTest, NegationIsInvolutive) {
  const Formula *A = M.mkLe(x(), c(3));
  EXPECT_EQ(M.mkNot(M.mkNot(A)), A);
  const Formula *Complex =
      M.mkOr(M.mkAnd(A, M.mkEq(y(), c(0))), M.mkDiv(3, x()));
  EXPECT_EQ(M.mkNot(M.mkNot(Complex)), Complex);
}

TEST_F(FormulaTest, NegationOfAtoms) {
  // ¬(x <= 3) == x >= 4.
  EXPECT_EQ(M.mkNot(M.mkLe(x(), c(3))), M.mkGe(x(), c(4)));
  EXPECT_EQ(M.mkNot(M.mkEq(x(), c(3))), M.mkNe(x(), c(3)));
  EXPECT_EQ(M.mkNot(M.mkDiv(4, x())), M.mkAtom(AtomRel::NDiv, x(), 4));
}

TEST_F(FormulaTest, LtIsLePlusOne) {
  EXPECT_EQ(M.mkLt(x(), c(4)), M.mkLe(x(), c(3)));
  EXPECT_EQ(M.mkGt(x(), c(4)), M.mkGe(x(), c(5)));
}

TEST_F(FormulaTest, ImpliesAndIff) {
  const Formula *A = M.mkLe(x(), c(0));
  EXPECT_TRUE(M.mkImplies(M.getFalse(), A)->isTrue());
  EXPECT_EQ(M.mkImplies(M.getTrue(), A), A);
  EXPECT_TRUE(M.mkIff(A, A)->isTrue());
}

TEST_F(FormulaTest, DivisibilityModReduction) {
  // 3 | (4x + 7) == 3 | (x + 1).
  const Formula *A = M.mkDiv(3, x().scaled(4).addConst(7));
  const Formula *B = M.mkDiv(3, x().addConst(1));
  EXPECT_EQ(A, B);
}

TEST_F(FormulaTest, DivisibilityCommonFactorReduction) {
  // 6 | 2x reduces to 3 | x.
  EXPECT_EQ(M.mkDiv(6, x().scaled(2)), M.mkDiv(3, x()));
}

TEST_F(FormulaTest, FreeVarsAndAtoms) {
  const Formula *F =
      M.mkOr(M.mkAnd(M.mkLe(x(), c(0)), M.mkEq(y(), c(2))), M.mkDiv(5, x()));
  std::set<VarId> FV = freeVars(F);
  EXPECT_EQ(FV, (std::set<VarId>{X, Y}));
  EXPECT_EQ(collectAtoms(F).size(), 3u);
  EXPECT_EQ(atomCount(F), 3u);
}

TEST_F(FormulaTest, SubstituteRebuildsAndFolds) {
  const Formula *F = M.mkAnd(M.mkLe(x(), c(3)), M.mkLe(y(), x()));
  const Formula *G = substitute(M, F, X, c(2));
  // x <= 3 folds to true; remaining: y <= 2.
  EXPECT_EQ(G, M.mkLe(y(), c(2)));
}

TEST_F(FormulaTest, EvaluateGround) {
  const Formula *F = M.mkAnd(M.mkLe(x(), c(3)), M.mkNe(y(), c(0)));
  auto V1 = [&](VarId V) -> int64_t { return V == X ? 2 : 1; };
  auto V2 = [&](VarId V) -> int64_t { return V == X ? 2 : 0; };
  EXPECT_TRUE(evaluate(F, V1));
  EXPECT_FALSE(evaluate(F, V2));
}

TEST_F(FormulaTest, CnfDnfRoundTripSemantics) {
  const Formula *F = M.mkOr(M.mkAnd(M.mkLe(x(), c(0)), M.mkLe(y(), c(0))),
                            M.mkGe(x(), c(5)));
  std::vector<std::vector<const Formula *>> Cnf, Dnf;
  ASSERT_TRUE(toCnf(M, F, Cnf));
  ASSERT_TRUE(toDnf(M, F, Dnf));
  EXPECT_EQ(Dnf.size(), 2u);
  EXPECT_EQ(Cnf.size(), 2u);
  // Check CNF/DNF agree with F on a grid of points.
  for (int64_t VX = -2; VX <= 6; ++VX)
    for (int64_t VY = -2; VY <= 2; ++VY) {
      auto Val = [&](VarId V) -> int64_t { return V == X ? VX : VY; };
      bool Expected = evaluate(F, Val);
      bool CnfVal = true;
      for (const auto &Clause : Cnf) {
        bool Any = false;
        for (const Formula *A : Clause)
          Any = Any || evaluate(A, Val);
        CnfVal = CnfVal && Any;
      }
      bool DnfVal = false;
      for (const auto &Cube : Dnf) {
        bool All = true;
        for (const Formula *A : Cube)
          All = All && evaluate(A, Val);
        DnfVal = DnfVal || All;
      }
      EXPECT_EQ(CnfVal, Expected) << "x=" << VX << " y=" << VY;
      EXPECT_EQ(DnfVal, Expected) << "x=" << VX << " y=" << VY;
    }
}

TEST_F(FormulaTest, PrinterRendering) {
  const Formula *F = M.mkAnd(M.mkLe(x(), c(3)), M.mkGe(y(), c(1)));
  std::string Str = toString(F, M.vars());
  EXPECT_NE(Str.find("&&"), std::string::npos);
  EXPECT_EQ(toString(M.getTrue(), M.vars()), "true");
  // Atom rendering puts the constant on the readable side.
  EXPECT_EQ(atomToString(M.mkLe(x(), c(3)), M.vars()), "x <= 3");
  EXPECT_EQ(atomToString(M.mkGe(x(), c(3)), M.vars()), "3 <= x");
}

TEST_F(FormulaTest, SmtLibOutputContainsDeclarations) {
  const Formula *F = M.mkLe(x(), y());
  std::string S = toSmtLib(F, M.vars());
  EXPECT_NE(S.find("declare-const"), std::string::npos);
  EXPECT_NE(S.find("check-sat"), std::string::npos);
}

} // namespace
