//===- tests/smt/LiaSolverTest.cpp - LIA conjunction solver tests ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LiaSolver.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class LiaTest : public ::testing::Test {
protected:
  VarTable VT;
  VarId X = VT.create("x", VarKind::Input);
  VarId Y = VT.create("y", VarKind::Input);
  VarId Z = VT.create("z", VarKind::Input);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr z(int64_t C = 1) { return LinearExpr::variable(Z, C); }

  /// Checks that the model (if Sat) satisfies all rows.
  void expectSat(const std::vector<LinearExpr> &Rows) {
    std::unordered_map<VarId, int64_t> Model;
    ASSERT_EQ(solveLiaConjunction(Rows, &Model), LiaStatus::Sat);
    for (const LinearExpr &E : Rows) {
      int64_t V = E.evaluate([&](VarId Id) { return Model.at(Id); });
      EXPECT_LE(V, 0) << "row violated: " << E.str(VT);
    }
  }
};

TEST_F(LiaTest, EmptyConjunctionIsSat) {
  expectSat({});
}

TEST_F(LiaTest, TrivialConstantRows) {
  EXPECT_EQ(solveLiaConjunction({LinearExpr::constant(-1)}, nullptr),
            LiaStatus::Sat);
  EXPECT_EQ(solveLiaConjunction({LinearExpr::constant(1)}, nullptr),
            LiaStatus::Unsat);
}

TEST_F(LiaTest, SimpleBounds) {
  // 3 <= x <= 7.
  expectSat({LinearExpr::constant(3).sub(x()), x().addConst(-7)});
}

TEST_F(LiaTest, ContradictoryBounds) {
  // x <= 2 and x >= 5.
  EXPECT_EQ(solveLiaConjunction(
                {x().addConst(-2), LinearExpr::constant(5).sub(x())}, nullptr),
            LiaStatus::Unsat);
}

TEST_F(LiaTest, IntegerGapUnsat) {
  // 0 < 2x < 2 has no integer solution (x would be 1/2):
  // rows: 1 - 2x <= 0 and 2x - 1 <= 0.
  EXPECT_EQ(solveLiaConjunction(
                {LinearExpr::constant(1).sub(x(2)), x(2).addConst(-1)},
                nullptr),
            LiaStatus::Unsat);
}

TEST_F(LiaTest, GcdCatchesParityConflict) {
  // 2x - 2y = 1: rows 2x-2y-1<=0 and -2x+2y+1<=0.
  EXPECT_EQ(solveLiaConjunction({x(2).sub(y(2)).addConst(-1),
                                 y(2).sub(x(2)).addConst(1)},
                                nullptr),
            LiaStatus::Unsat);
}

TEST_F(LiaTest, EqualityViaTwoRows) {
  // x + y = 10, x - y = 4 -> x = 7, y = 3.
  std::vector<LinearExpr> Rows = {
      x().add(y()).addConst(-10), x().negated().sub(y()).addConst(10),
      x().sub(y()).addConst(-4), y().sub(x()).addConst(4)};
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_EQ(solveLiaConjunction(Rows, &Model), LiaStatus::Sat);
  EXPECT_EQ(Model.at(X), 7);
  EXPECT_EQ(Model.at(Y), 3);
}

TEST_F(LiaTest, ThreeVarFeasible) {
  // x + y + z >= 10, x <= 2, y <= 3  =>  z >= 5.
  std::vector<LinearExpr> Rows = {
      LinearExpr::constant(10).sub(x()).sub(y()).sub(z()), x().addConst(-2),
      y().addConst(-3)};
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_EQ(solveLiaConjunction(Rows, &Model), LiaStatus::Sat);
  EXPECT_GE(Model.at(Z), 5);
}

TEST_F(LiaTest, BranchingRequired) {
  // 2x + 3y = 7 with 0 <= x,y <= 5: solutions (2,1). Encoded as 4 rows plus
  // bounds; the LP relaxation is fractional at some vertices.
  std::vector<LinearExpr> Rows = {
      x(2).add(y(3)).addConst(-7), x(-2).sub(y(3)).addConst(7),
      x(-1),          // x >= 0
      y(-1),          // y >= 0
      x().addConst(-5), y().addConst(-5)};
  std::unordered_map<VarId, int64_t> Model;
  ASSERT_EQ(solveLiaConjunction(Rows, &Model), LiaStatus::Sat);
  EXPECT_EQ(2 * Model.at(X) + 3 * Model.at(Y), 7);
}

TEST_F(LiaTest, UnconstrainedVariableGetsValue) {
  std::unordered_map<VarId, int64_t> Model;
  // Row mentions x only via zero after simplification? Use y free: x <= 0.
  ASSERT_EQ(solveLiaConjunction({x()}, &Model), LiaStatus::Sat);
  EXPECT_TRUE(Model.count(X));
}

/// Brute-force reference over a small box.
bool bruteForce(const std::vector<LinearExpr> &Rows, int64_t Lo, int64_t Hi,
                VarId X) {
  for (int64_t VX = Lo; VX <= Hi; ++VX)
    for (int64_t VY = Lo; VY <= Hi; ++VY) {
      bool Ok = true;
      for (const LinearExpr &E : Rows) {
        int64_t V = E.evaluate([&](VarId Id) { return Id == X ? VX : VY; });
        if (V > 0) {
          Ok = false;
          break;
        }
      }
      if (Ok)
        return true;
    }
  return false;
}

// Property: agreement with brute force on random bounded 2-var systems.
TEST_F(LiaTest, PropertyRandomSystemsAgainstBruteForce) {
  Rng R(99);
  for (int Round = 0; Round < 400; ++Round) {
    std::vector<LinearExpr> Rows;
    // Box -6..6 to make brute force exact w.r.t. the solver's search space.
    Rows.push_back(x().addConst(-6));
    Rows.push_back(x(-1).addConst(-6));
    Rows.push_back(y().addConst(-6));
    Rows.push_back(y(-1).addConst(-6));
    int N = static_cast<int>(R.range(1, 4));
    for (int I = 0; I < N; ++I) {
      LinearExpr E = x(R.range(-4, 4)).add(y(R.range(-4, 4)))
                         .addConst(R.range(-8, 8));
      Rows.push_back(E);
    }
    bool Expected = bruteForce(Rows, -6, 6, X);
    std::unordered_map<VarId, int64_t> Model;
    LiaStatus St = solveLiaConjunction(Rows, &Model);
    ASSERT_NE(St, LiaStatus::ResourceLimit) << "round " << Round;
    EXPECT_EQ(St == LiaStatus::Sat, Expected) << "round " << Round;
    if (St == LiaStatus::Sat) {
      for (const LinearExpr &E : Rows)
        EXPECT_LE(E.evaluate([&](VarId Id) { return Model.at(Id); }), 0);
    }
  }
}

} // namespace
