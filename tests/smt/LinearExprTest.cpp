//===- tests/smt/LinearExprTest.cpp - LinearExpr unit tests ----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LinearExpr.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class LinearExprTest : public ::testing::Test {
protected:
  VarTable VT;
  VarId X = VT.create("x", VarKind::Input);
  VarId Y = VT.create("y", VarKind::Input);
  VarId Z = VT.create("z", VarKind::Abstraction);
};

TEST_F(LinearExprTest, ConstantBasics) {
  LinearExpr C = LinearExpr::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constant(), 7);
  EXPECT_EQ(C.numTerms(), 0u);
}

TEST_F(LinearExprTest, VariableBasics) {
  LinearExpr E = LinearExpr::variable(X, 3);
  EXPECT_FALSE(E.isConstant());
  EXPECT_EQ(E.coeff(X), 3);
  EXPECT_EQ(E.coeff(Y), 0);
}

TEST_F(LinearExprTest, ZeroCoefficientVariableIsConstant) {
  LinearExpr E = LinearExpr::variable(X, 0);
  EXPECT_TRUE(E.isConstant());
}

TEST_F(LinearExprTest, AdditionMergesTerms) {
  LinearExpr A = LinearExpr::variable(X, 2).add(LinearExpr::constant(1));
  LinearExpr B = LinearExpr::variable(X, 3).add(LinearExpr::variable(Y, -1));
  LinearExpr S = A.add(B);
  EXPECT_EQ(S.coeff(X), 5);
  EXPECT_EQ(S.coeff(Y), -1);
  EXPECT_EQ(S.constant(), 1);
}

TEST_F(LinearExprTest, AdditionCancelsToConstant) {
  LinearExpr A = LinearExpr::variable(X, 2);
  LinearExpr B = LinearExpr::variable(X, -2).add(LinearExpr::constant(5));
  LinearExpr S = A.add(B);
  EXPECT_TRUE(S.isConstant());
  EXPECT_EQ(S.constant(), 5);
}

TEST_F(LinearExprTest, SubtractionIsAddOfNegation) {
  LinearExpr A = LinearExpr::variable(X, 4).add(LinearExpr::constant(-2));
  LinearExpr D = A.sub(A);
  EXPECT_TRUE(D.isConstant());
  EXPECT_EQ(D.constant(), 0);
}

TEST_F(LinearExprTest, ScalingByZeroGivesZero) {
  LinearExpr A = LinearExpr::variable(X, 4).add(LinearExpr::constant(3));
  LinearExpr Z0 = A.scaled(0);
  EXPECT_TRUE(Z0.isConstant());
  EXPECT_EQ(Z0.constant(), 0);
}

TEST_F(LinearExprTest, SubstitutionReplacesVariable) {
  // 2x + y + 1 with x := 3z - 1 becomes 6z + y - 1.
  LinearExpr E = LinearExpr::variable(X, 2)
                     .add(LinearExpr::variable(Y))
                     .addConst(1);
  LinearExpr Repl = LinearExpr::variable(Z, 3).addConst(-1);
  LinearExpr R = E.substituted(X, Repl);
  EXPECT_EQ(R.coeff(Z), 6);
  EXPECT_EQ(R.coeff(Y), 1);
  EXPECT_EQ(R.coeff(X), 0);
  EXPECT_EQ(R.constant(), -1);
}

TEST_F(LinearExprTest, SubstitutionOfAbsentVariableIsIdentity) {
  LinearExpr E = LinearExpr::variable(Y, 2);
  LinearExpr R = E.substituted(X, LinearExpr::constant(100));
  EXPECT_EQ(R, E);
}

TEST_F(LinearExprTest, CoeffGcd) {
  LinearExpr E = LinearExpr::variable(X, 6).add(LinearExpr::variable(Y, -9));
  EXPECT_EQ(E.coeffGcd(), 3);
  EXPECT_EQ(LinearExpr::constant(5).coeffGcd(), 0);
}

TEST_F(LinearExprTest, Evaluate) {
  LinearExpr E = LinearExpr::variable(X, 2)
                     .add(LinearExpr::variable(Y, -3))
                     .addConst(4);
  auto Val = [&](VarId V) -> int64_t { return V == X ? 5 : 2; };
  EXPECT_EQ(E.evaluate(Val), 2 * 5 - 3 * 2 + 4);
}

TEST_F(LinearExprTest, EqualityAndHashAgree) {
  LinearExpr A = LinearExpr::variable(X, 2).addConst(1);
  LinearExpr B = LinearExpr::variable(X).scaled(2).addConst(1);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST_F(LinearExprTest, StrRendering) {
  LinearExpr E = LinearExpr::variable(X, 2)
                     .add(LinearExpr::variable(Y, -1))
                     .addConst(3);
  EXPECT_EQ(E.str(VT), "2*x - y + 3");
  EXPECT_EQ(LinearExpr::constant(-4).str(VT), "-4");
  EXPECT_EQ(LinearExpr::variable(X, -1).str(VT), "-x");
}

// Property: (A + B) - B == A for random expressions.
TEST_F(LinearExprTest, PropertyAddSubRoundTrip) {
  Rng R(42);
  for (int Iter = 0; Iter < 200; ++Iter) {
    LinearExpr A = LinearExpr::constant(R.range(-50, 50));
    LinearExpr B = LinearExpr::constant(R.range(-50, 50));
    for (VarId V : {X, Y, Z}) {
      A = A.add(LinearExpr::variable(V, R.range(-10, 10)));
      B = B.add(LinearExpr::variable(V, R.range(-10, 10)));
    }
    EXPECT_EQ(A.add(B).sub(B), A);
  }
}

// Property: evaluation is linear: eval(A + B) == eval(A) + eval(B).
TEST_F(LinearExprTest, PropertyEvaluationLinear) {
  Rng R(7);
  for (int Iter = 0; Iter < 200; ++Iter) {
    LinearExpr A = LinearExpr::constant(R.range(-50, 50));
    LinearExpr B = LinearExpr::constant(R.range(-50, 50));
    for (VarId V : {X, Y, Z}) {
      A = A.add(LinearExpr::variable(V, R.range(-10, 10)));
      B = B.add(LinearExpr::variable(V, R.range(-10, 10)));
    }
    int64_t VX = R.range(-20, 20), VY = R.range(-20, 20), VZ = R.range(-20, 20);
    auto Val = [&](VarId V) -> int64_t {
      return V == X ? VX : (V == Y ? VY : VZ);
    };
    EXPECT_EQ(A.add(B).evaluate(Val), A.evaluate(Val) + B.evaluate(Val));
  }
}

TEST(CheckedArithTest, FloorCeilDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(7, 3), 1);
}

TEST(CheckedArithTest, GcdLcm) {
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
}

} // namespace
