//===- tests/smt/SatIncrementalTest.cpp - Assumption-based solving ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the incremental SAT interface: assumption-based solving,
/// failed-assumption cores, and clause/learned-clause retention across
/// solve() calls -- the substrate of the Solver::Session used by the MSA
/// subset search.
///
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "smt/FormulaOps.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace abdiag;
using namespace abdiag::sat;

namespace {

TEST(SatIncrementalTest, AssumptionsRestrictModels) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)})); // a | b

  ASSERT_EQ(S.solve({mkLit(A, true)}), SatSolver::Result::Sat); // assume ¬a
  EXPECT_EQ(S.value(A), LBool::False);
  EXPECT_EQ(S.value(B), LBool::True);

  ASSERT_EQ(S.solve({mkLit(B, true)}), SatSolver::Result::Sat); // assume ¬b
  EXPECT_EQ(S.value(A), LBool::True);
  EXPECT_EQ(S.value(B), LBool::False);

  // Assumptions are transient: without them the formula is still Sat.
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatIncrementalTest, UnsatUnderAssumptionsReportsFailedSubset) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)})); // a -> b

  // ¬b together with a contradicts a -> b; c is irrelevant.
  ASSERT_EQ(S.solve({mkLit(C), mkLit(A), mkLit(B, true)}),
            SatSolver::Result::Unsat);
  std::vector<Lit> Failed = S.failedAssumptions();
  std::sort(Failed.begin(), Failed.end());
  EXPECT_EQ(Failed, (std::vector<Lit>{mkLit(A), mkLit(B, true)}));

  // The solver is reusable after an assumption failure.
  EXPECT_EQ(S.solve({mkLit(A), mkLit(B)}), SatSolver::Result::Sat);
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatIncrementalTest, ContradictoryAssumptionPairIsItsOwnCore) {
  SatSolver S;
  BVar A = S.newVar();
  (void)S.newVar();
  ASSERT_EQ(S.solve({mkLit(A), mkLit(A, true)}), SatSolver::Result::Unsat);
  std::vector<Lit> Failed = S.failedAssumptions();
  std::sort(Failed.begin(), Failed.end());
  EXPECT_EQ(Failed, (std::vector<Lit>{mkLit(A), mkLit(A, true)}));
}

TEST(SatIncrementalTest, AssumptionFalsifiedAtLevelZeroIsSingletonCore) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A, true)})); // unit ¬a
  ASSERT_EQ(S.solve({mkLit(A)}), SatSolver::Result::Unsat);
  EXPECT_EQ(S.failedAssumptions(), (std::vector<Lit>{mkLit(A)}));
  // The clause set itself stays satisfiable.
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatIncrementalTest, UnsatClauseSetYieldsEmptyCore) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  ASSERT_FALSE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve({mkLit(A)}), SatSolver::Result::Unsat);
  EXPECT_TRUE(S.failedAssumptions().empty());
}

TEST(SatIncrementalTest, ClausesPersistAcrossAssumptionSolves) {
  // Pigeonhole-flavoured: selector s_i activates clause set i. Solving under
  // one selector must not disturb the others, and clauses added between
  // solves take effect.
  SatSolver S;
  BVar S1 = S.newVar(), S2 = S.newVar();
  BVar X = S.newVar(), Y = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(S1, true), mkLit(X)}));  // s1 -> x
  ASSERT_TRUE(S.addClause({mkLit(S2, true), mkLit(X, true)})); // s2 -> ¬x

  ASSERT_EQ(S.solve({mkLit(S1)}), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(X), LBool::True);
  ASSERT_EQ(S.solve({mkLit(S2)}), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(X), LBool::False);
  ASSERT_EQ(S.solve({mkLit(S1), mkLit(S2)}), SatSolver::Result::Unsat);
  std::vector<Lit> Failed = S.failedAssumptions();
  std::sort(Failed.begin(), Failed.end());
  EXPECT_EQ(Failed, (std::vector<Lit>{mkLit(S1), mkLit(S2)}));

  // Incremental clause addition after assumption solves.
  ASSERT_TRUE(S.addClause({mkLit(X, true), mkLit(Y)})); // x -> y
  ASSERT_EQ(S.solve({mkLit(S1)}), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(Y), LBool::True);
}

/// Reference check: evaluates the clause set under the solver's assignment.
bool assignmentSatisfies(const SatSolver &S,
                         const std::vector<std::vector<Lit>> &Clauses) {
  for (const std::vector<Lit> &C : Clauses) {
    bool Any = false;
    for (Lit L : C) {
      LBool V = S.value(litVar(L));
      if (V == LBool::Undef)
        continue;
      if ((V == LBool::True) != litNeg(L)) {
        Any = true;
        break;
      }
    }
    if (!Any)
      return false;
  }
  return true;
}

TEST(SatIncrementalTest, RandomizedAssumptionSolvesAgreeWithFreshSolver) {
  // A long-lived incremental solver answering under random assumption sets
  // must agree with a throwaway solver given the same clauses plus the
  // assumptions as units; its failed-assumption set must itself be unsat.
  Rng R(20120613);
  for (int Round = 0; Round < 40; ++Round) {
    int NumVars = static_cast<int>(R.range(4, 10));
    SatSolver Inc;
    for (int I = 0; I < NumVars; ++I)
      Inc.newVar();
    std::vector<std::vector<Lit>> Clauses;
    bool BaseUnsat = false;
    for (int I = 0; I < NumVars * 3; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(mkLit(static_cast<BVar>(R.range(0, NumVars - 1)),
                          R.chance(0.5)));
      Clauses.push_back(C);
      BaseUnsat = !Inc.addClause(C) || BaseUnsat;
    }
    if (BaseUnsat)
      continue;
    for (int Query = 0; Query < 10; ++Query) {
      std::vector<Lit> Assumps;
      for (int I = 0; I < NumVars; ++I)
        if (R.chance(0.3))
          Assumps.push_back(mkLit(static_cast<BVar>(I), R.chance(0.5)));
      SatSolver::Result Got = Inc.solve(Assumps);

      SatSolver Fresh;
      for (int I = 0; I < NumVars; ++I)
        Fresh.newVar();
      bool FreshOk = true;
      for (const std::vector<Lit> &C : Clauses)
        FreshOk = Fresh.addClause(C) && FreshOk;
      for (Lit A : Assumps)
        FreshOk = Fresh.addClause({A}) && FreshOk;
      SatSolver::Result Want = !FreshOk ? SatSolver::Result::Unsat
                                        : Fresh.solve();
      ASSERT_EQ(Got, Want) << "round " << Round << " query " << Query;

      if (Got == SatSolver::Result::Sat) {
        EXPECT_TRUE(assignmentSatisfies(Inc, Clauses));
        for (Lit A : Assumps)
          EXPECT_NE(Inc.value(litVar(A)) == LBool::True, litNeg(A))
              << "assumption not honoured";
      } else {
        // The failed subset must really be unsat with the clause set.
        SatSolver CoreCheck;
        for (int I = 0; I < NumVars; ++I)
          CoreCheck.newVar();
        bool CoreOk = true;
        for (const std::vector<Lit> &C : Clauses)
          CoreOk = CoreCheck.addClause(C) && CoreOk;
        for (Lit A : Inc.failedAssumptions())
          CoreOk = CoreCheck.addClause({A}) && CoreOk;
        EXPECT_TRUE(!CoreOk ||
                    CoreCheck.solve() == SatSolver::Result::Unsat)
            << "failed-assumption set is not an unsat core";
      }
    }
  }
}

TEST(SatIncrementalTest, SessionIncrementalSimplexMatchesFreshSolves) {
  // A Solver::Session keeps one warm incremental simplex tableau across
  // checks (bounds are pushed and popped per check; slack rows persist).
  // Across a randomized assumption sequence, every check must reproduce
  // the verdict of a fresh one-shot solve of the same conjunction, return
  // a genuine model when Sat, and a genuinely-unsat core when Unsat.
  using namespace abdiag::smt;
  FormulaManager M;
  Rng R(20260807);

  std::vector<VarId> Vars;
  for (int I = 0; I < 4; ++I)
    Vars.push_back(M.vars().create("v" + std::to_string(I), VarKind::Input));

  // Atom pool: random linear inequalities and a few equalities over the
  // shared variables, so distinct checks overlap heavily in their rows --
  // the case the persistent tableau exists for.
  std::vector<const Formula *> Pool;
  for (int I = 0; I < 14; ++I) {
    LinearExpr E = LinearExpr::constant(0);
    for (VarId V : Vars)
      E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    LinearExpr C = LinearExpr::constant(R.range(-8, 8));
    Pool.push_back(I % 4 == 0 ? M.mkEq(E, C) : M.mkLe(E, C));
  }

  Solver Slv(M);
  Solver::Session Sess(Slv);
  for (int Check = 0; Check < 60; ++Check) {
    std::vector<const Formula *> Conj;
    for (const Formula *F : Pool)
      if (R.chance(0.4))
        Conj.push_back(F);
    if (Conj.empty())
      Conj.push_back(M.getTrue());

    const Formula *All = M.getTrue();
    for (const Formula *F : Conj)
      All = M.mkAnd(All, F);

    Model Mo;
    bool Got = Sess.check(Conj, &Mo);

    Solver Fresh(M);
    Fresh.setCaching(false);
    EXPECT_EQ(Got, Fresh.isSat(All)) << "check " << Check;

    if (Got) {
      EXPECT_TRUE(evaluate(All, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      })) << "session model does not satisfy the conjunction, check "
          << Check;
    } else {
      const Formula *Core = M.getTrue();
      for (const Formula *F : Sess.lastCore())
        Core = M.mkAnd(Core, F);
      EXPECT_FALSE(Fresh.isSat(Core))
          << "session core is not unsat, check " << Check;
    }
  }
  // The sequence must actually have hit the warm tableau's slack cache --
  // otherwise this test is not exercising the incremental path at all.
  EXPECT_GT(Slv.stats().TableauReuses, 0u);
}

} // namespace
