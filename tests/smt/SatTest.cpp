//===- tests/smt/SatTest.cpp - CDCL SAT solver unit tests -------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace abdiag;
using namespace abdiag::sat;

namespace {

TEST(SatTest, EmptyFormulaIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatTest, SingleUnit) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(A), LBool::True);
}

TEST(SatTest, ContradictoryUnits) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  EXPECT_FALSE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, TautologyClausesIgnored) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatTest, SimpleImplicationChain) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(B, true), mkLit(C)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(C), LBool::True);
}

TEST(SatTest, PigeonHole3Into2IsUnsat) {
  // Pigeon i in hole j: var P[i][j]; each pigeon somewhere; no two share.
  SatSolver S;
  BVar P[3][2];
  for (auto &Row : P)
    for (BVar &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(S.addClause({mkLit(P[I][0]), mkLit(P[I][1])}));
  for (int J = 0; J < 2; ++J)
    for (int I1 = 0; I1 < 3; ++I1)
      for (int I2 = I1 + 1; I2 < 3; ++I2)
        S.addClause({mkLit(P[I1][J], true), mkLit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, IncrementalClauseAdditionAfterSolve) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  ASSERT_TRUE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(B), LBool::True);
  // B is forced at the root level, so adding ¬B reports immediate
  // unsatisfiability through the return value.
  EXPECT_FALSE(S.addClause({mkLit(B, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, LubySequence) {
  std::vector<uint64_t> Expect = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t I = 0; I < Expect.size(); ++I)
    EXPECT_EQ(lubySequence(I + 1), Expect[I]) << "index " << I + 1;
}

/// Reference brute-force SAT check for differential testing.
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool Ok = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool Val = (Mask >> litVar(L)) & 1;
        if (litNeg(L) ? !Val : Val)
          Any = true;
      }
      if (!Any) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return true;
  }
  return false;
}

// Property: CDCL agrees with brute force on random 3-SAT near the phase
// transition, and Sat answers come with genuine models.
TEST(SatTest, PropertyRandom3SatAgainstBruteForce) {
  Rng R(123);
  for (int Round = 0; Round < 300; ++Round) {
    unsigned NumVars = 4 + static_cast<unsigned>(R.range(0, 6));
    unsigned NumClauses = static_cast<unsigned>(NumVars * 4.3);
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (unsigned I = 0; I < NumVars; ++I)
      S.newVar();
    bool TriviallyUnsat = false;
    for (unsigned I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(mkLit(static_cast<BVar>(R.range(0, NumVars - 1)),
                          R.chance(0.5)));
      Clauses.push_back(C);
      if (!S.addClause(C))
        TriviallyUnsat = true;
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    if (TriviallyUnsat) {
      EXPECT_FALSE(Expected);
      continue;
    }
    bool Got = S.solve() == SatSolver::Result::Sat;
    ASSERT_EQ(Got, Expected) << "round " << Round;
    if (Got) {
      // Verify the model satisfies every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C) {
          LBool V = S.value(litVar(L));
          if ((V == LBool::True) != litNeg(L))
            Any = true;
        }
        EXPECT_TRUE(Any) << "model violates a clause in round " << Round;
      }
    }
  }
}

} // namespace
