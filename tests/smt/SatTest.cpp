//===- tests/smt/SatTest.cpp - CDCL SAT solver unit tests -------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace abdiag;
using namespace abdiag::sat;

namespace {

TEST(SatTest, EmptyFormulaIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatTest, SingleUnit) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(A), LBool::True);
}

TEST(SatTest, ContradictoryUnits) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  EXPECT_FALSE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, TautologyClausesIgnored) {
  SatSolver S;
  BVar A = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatTest, SimpleImplicationChain) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(B, true), mkLit(C)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(C), LBool::True);
}

TEST(SatTest, PigeonHole3Into2IsUnsat) {
  // Pigeon i in hole j: var P[i][j]; each pigeon somewhere; no two share.
  SatSolver S;
  BVar P[3][2];
  for (auto &Row : P)
    for (BVar &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(S.addClause({mkLit(P[I][0]), mkLit(P[I][1])}));
  for (int J = 0; J < 2; ++J)
    for (int I1 = 0; I1 < 3; ++I1)
      for (int I2 = I1 + 1; I2 < 3; ++I2)
        S.addClause({mkLit(P[I1][J], true), mkLit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, IncrementalClauseAdditionAfterSolve) {
  SatSolver S;
  BVar A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  ASSERT_TRUE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(S.value(B), LBool::True);
  // B is forced at the root level, so adding ¬B reports immediate
  // unsatisfiability through the return value.
  EXPECT_FALSE(S.addClause({mkLit(B, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, LubySequence) {
  std::vector<uint64_t> Expect = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t I = 0; I < Expect.size(); ++I)
    EXPECT_EQ(lubySequence(I + 1), Expect[I]) << "index " << I + 1;
}

/// Reference brute-force SAT check for differential testing.
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool Ok = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool Val = (Mask >> litVar(L)) & 1;
        if (litNeg(L) ? !Val : Val)
          Any = true;
      }
      if (!Any) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return true;
  }
  return false;
}

// Property: CDCL agrees with brute force on random 3-SAT near the phase
// transition, and Sat answers come with genuine models.
TEST(SatTest, PropertyRandom3SatAgainstBruteForce) {
  Rng R(123);
  for (int Round = 0; Round < 300; ++Round) {
    unsigned NumVars = 4 + static_cast<unsigned>(R.range(0, 6));
    unsigned NumClauses = static_cast<unsigned>(NumVars * 4.3);
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (unsigned I = 0; I < NumVars; ++I)
      S.newVar();
    bool TriviallyUnsat = false;
    for (unsigned I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(mkLit(static_cast<BVar>(R.range(0, NumVars - 1)),
                          R.chance(0.5)));
      Clauses.push_back(C);
      if (!S.addClause(C))
        TriviallyUnsat = true;
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    if (TriviallyUnsat) {
      EXPECT_FALSE(Expected);
      continue;
    }
    bool Got = S.solve() == SatSolver::Result::Sat;
    ASSERT_EQ(Got, Expected) << "round " << Round;
    if (Got) {
      // Verify the model satisfies every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C) {
          LBool V = S.value(litVar(L));
          if ((V == LBool::True) != litNeg(L))
            Any = true;
        }
        EXPECT_TRUE(Any) << "model violates a clause in round " << Round;
      }
    }
  }
}

/// The differential-testing knob matrix: clause-database reduction on/off
/// crossed with VSIDS order heap vs reference linear activity scan. Every
/// combination must produce identical verdicts, genuine models, and genuine
/// failed-assumption cores -- the knobs may only change *cost*.
struct SatKnobs {
  bool Reduce;
  bool Heap;
};

constexpr SatKnobs KnobMatrix[] = {
    {true, true}, {true, false}, {false, true}, {false, false}};

SatSolver makeSolver(unsigned NumVars, SatKnobs K,
                     const std::vector<std::vector<Lit>> &Clauses,
                     bool &TriviallyUnsat) {
  SatSolver S;
  S.setClauseReduction(K.Reduce);
  S.setUseOrderHeap(K.Heap);
  for (unsigned I = 0; I < NumVars; ++I)
    S.newVar();
  TriviallyUnsat = false;
  for (const std::vector<Lit> &C : Clauses)
    TriviallyUnsat = !S.addClause(C) || TriviallyUnsat;
  return S;
}

// Seeded fuzz over the knob matrix on small instances: all four
// configurations agree with brute force on verdicts, return real models,
// and report failed-assumption subsets that are genuinely unsat.
TEST(SatTest, PropertyKnobMatrixAgreesOnRandomInstances) {
  Rng R(8420);
  for (int Round = 0; Round < 120; ++Round) {
    unsigned NumVars = 4 + static_cast<unsigned>(R.range(0, 6));
    unsigned NumClauses = static_cast<unsigned>(NumVars * 4.3);
    std::vector<std::vector<Lit>> Clauses;
    for (unsigned I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(mkLit(static_cast<BVar>(R.range(0, NumVars - 1)),
                          R.chance(0.5)));
      Clauses.push_back(C);
    }
    std::vector<Lit> Assumps;
    for (unsigned I = 0; I < NumVars; ++I)
      if (R.chance(0.25))
        Assumps.push_back(mkLit(static_cast<BVar>(I), R.chance(0.5)));

    std::vector<std::vector<Lit>> WithAssumps = Clauses;
    for (Lit A : Assumps)
      WithAssumps.push_back({A});
    bool Expected = bruteForceSat(NumVars, WithAssumps);

    for (SatKnobs K : KnobMatrix) {
      bool TriviallyUnsat = false;
      SatSolver S = makeSolver(NumVars, K, Clauses, TriviallyUnsat);
      if (TriviallyUnsat) {
        EXPECT_FALSE(Expected);
        continue;
      }
      bool Got = S.solve(Assumps) == SatSolver::Result::Sat;
      ASSERT_EQ(Got, Expected)
          << "round " << Round << " reduce=" << K.Reduce
          << " heap=" << K.Heap;
      if (Got) {
        for (const std::vector<Lit> &C : Clauses) {
          bool Any = false;
          for (Lit L : C)
            if ((S.value(litVar(L)) == LBool::True) != litNeg(L))
              Any = true;
          EXPECT_TRUE(Any) << "model violates a clause in round " << Round;
        }
        for (Lit A : Assumps)
          EXPECT_NE(S.value(litVar(A)) == LBool::True, litNeg(A))
              << "assumption not honoured in round " << Round;
      } else {
        // The failed subset conjoined with the clause set must be unsat.
        std::vector<std::vector<Lit>> WithCore = Clauses;
        for (Lit A : S.failedAssumptions())
          WithCore.push_back({A});
        EXPECT_FALSE(bruteForceSat(NumVars, WithCore))
            << "failed-assumption set is not an unsat core in round "
            << Round;
      }
    }
  }
}

// Instances hard enough to cross the 2000-conflict reduction interval, so
// reduceDB (deletion, arena compaction, watch rebuild) actually runs -- the
// small fuzz rounds above never reach it. n=180 at clause ratio 4.26 with
// these seeds yields one sat and one unsat instance, both reducing.
TEST(SatTest, KnobMatrixAgreesWhenReductionTriggers) {
  const unsigned NumVars = 180;
  for (uint64_t Seed : {42u, 43u}) {
    Rng R(Seed);
    std::vector<std::vector<Lit>> Clauses;
    unsigned NumClauses = static_cast<unsigned>(NumVars * 4.26);
    for (unsigned I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(mkLit(static_cast<BVar>(R.range(0, NumVars - 1)),
                          R.chance(0.5)));
      Clauses.push_back(C);
    }
    int SawVerdict = -1;
    for (SatKnobs K : KnobMatrix) {
      bool TriviallyUnsat = false;
      SatSolver S = makeSolver(NumVars, K, Clauses, TriviallyUnsat);
      ASSERT_FALSE(TriviallyUnsat);
      bool Got = S.solve() == SatSolver::Result::Sat;
      if (SawVerdict < 0)
        SawVerdict = Got;
      EXPECT_EQ(Got, SawVerdict == 1)
          << "seed " << Seed << " reduce=" << K.Reduce << " heap=" << K.Heap;
      if (K.Reduce)
        EXPECT_GT(S.numReduced(), 0u)
            << "seed " << Seed << ": instance too easy to exercise reduceDB";
      else
        EXPECT_EQ(S.numReduced(), 0u);
      if (Got)
        for (const std::vector<Lit> &C : Clauses) {
          bool Any = false;
          for (Lit L : C)
            if ((S.value(litVar(L)) == LBool::True) != litNeg(L))
              Any = true;
          ASSERT_TRUE(Any) << "model violates a clause, seed " << Seed;
        }
    }
  }
}

} // namespace
