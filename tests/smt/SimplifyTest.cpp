//===- tests/smt/SimplifyTest.cpp - Context simplification tests ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "smt/Simplify.h"

#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class SimplifyTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }
};

TEST_F(SimplifyTest, DropsConjunctImpliedByCritical) {
  // Under critical x >= 5, the conjunct x >= 3 in (x >= 3 && y <= 0) is
  // redundant.
  const Formula *F = M.mkAnd(M.mkGe(x(), c(3)), M.mkLe(y(), c(0)));
  const Formula *R = simplifyModulo(S, F, M.mkGe(x(), c(5)));
  EXPECT_EQ(R, M.mkLe(y(), c(0)));
}

TEST_F(SimplifyTest, DropsConjunctImpliedByOtherConjunct) {
  const Formula *F = M.mkAnd(M.mkGe(x(), c(5)), M.mkGe(x(), c(3)));
  const Formula *R = simplify(S, F);
  EXPECT_EQ(R, M.mkGe(x(), c(5)));
}

TEST_F(SimplifyTest, DropsDisjunctInconsistentWithCritical) {
  // Under critical x >= 5, the disjunct x <= 0 can never fire.
  const Formula *F = M.mkOr(M.mkLe(x(), c(0)), M.mkLe(y(), c(0)));
  const Formula *R = simplifyModulo(S, F, M.mkGe(x(), c(5)));
  EXPECT_EQ(R, M.mkLe(y(), c(0)));
}

TEST_F(SimplifyTest, WholeDisjunctionImpliedBecomesTrue) {
  // Under critical true, (x <= 5 || x >= 6) is valid.
  const Formula *F = M.mkOr(M.mkLe(x(), c(5)), M.mkGe(x(), c(6)));
  EXPECT_TRUE(simplify(S, F)->isTrue());
}

TEST_F(SimplifyTest, ContradictoryFormulaUnderCriticalKept) {
  // Simplification must preserve equivalence modulo the critical constraint:
  // under x >= 5 the atom x <= 0 is equivalent to false.
  const Formula *R = simplifyModulo(S, M.mkLe(x(), c(0)), M.mkGe(x(), c(5)));
  EXPECT_TRUE(R->isFalse());
}

TEST_F(SimplifyTest, UnsatCriticalLeavesFormulaAlone) {
  const Formula *F = M.mkLe(x(), c(0));
  const Formula *Bad = M.mkAnd(M.mkGe(x(), c(1)), M.mkLe(x(), c(0)));
  EXPECT_EQ(simplifyModulo(S, F, Bad), F);
}

TEST_F(SimplifyTest, NestedRedundancy) {
  // (x >= 0 && (x >= -5 || y = 3)) simplifies to x >= 0: the inner
  // disjunction is implied by x >= 0.
  const Formula *F = M.mkAnd(
      M.mkGe(x(), c(0)), M.mkOr(M.mkGe(x(), c(-5)), M.mkEq(y(), c(3))));
  EXPECT_EQ(simplify(S, F), M.mkGe(x(), c(0)));
}

TEST_F(SimplifyTest, EquivalencePreservedModuloCritical) {
  // Whatever the simplifier does, Critical |= (F <=> F').
  const Formula *Critical = M.mkAnd(M.mkGe(x(), c(0)), M.mkLe(y(), x()));
  const Formula *F = M.mkOr(M.mkAnd(M.mkGe(x(), c(-2)), M.mkLe(y(), c(100))),
                            M.mkAnd(M.mkLe(x(), c(-1)), M.mkGe(y(), c(5))));
  const Formula *R = simplifyModulo(S, F, Critical);
  EXPECT_TRUE(S.isValid(M.mkImplies(Critical, M.mkIff(F, R))));
  EXPECT_LE(atomCount(R), atomCount(F));
}

TEST_F(SimplifyTest, PaperRemarkExample) {
  // Remark after Lemma 3: with I = (alpha_i >= 0 && alpha_i > n), a raw
  // obligation like (alpha_j >= 0 && alpha_j >= n) should shed the part
  // implied by I and the rest stays.
  VarId Aj = M.vars().create("alpha_j", VarKind::Abstraction);
  VarId Ai = M.vars().create("alpha_i", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr AjE = LinearExpr::variable(Aj), AiE = LinearExpr::variable(Ai),
             NE = LinearExpr::variable(N);
  const Formula *I =
      M.mkAnd({M.mkGe(AiE, c(0)), M.mkGt(AiE, NE), M.mkGe(NE, c(0))});
  const Formula *Raw = M.mkAnd(M.mkGe(AjE, NE), M.mkGt(AiE, NE));
  const Formula *R = simplifyModulo(S, Raw, I);
  EXPECT_EQ(R, M.mkGe(AjE, NE));
}

} // namespace
