//===- tests/smt/SolverTest.cpp - DPLL(T) SMT solver tests ------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/FormulaOps.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

class SolverTest : public ::testing::Test {
protected:
  FormulaManager M;
  Solver S{M};
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);
  VarId Z = M.vars().create("z", VarKind::Abstraction);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr z(int64_t C = 1) { return LinearExpr::variable(Z, C); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }

  void expectSatWithModel(const Formula *F) {
    Model Mo;
    ASSERT_TRUE(S.isSat(F, &Mo));
    EXPECT_TRUE(evaluate(F, [&](VarId V) {
      auto It = Mo.find(V);
      return It == Mo.end() ? int64_t(0) : It->second;
    })) << "model does not satisfy formula";
  }
};

TEST_F(SolverTest, Constants) {
  EXPECT_TRUE(S.isSat(M.getTrue()));
  EXPECT_FALSE(S.isSat(M.getFalse()));
  EXPECT_TRUE(S.isValid(M.getTrue()));
  EXPECT_FALSE(S.isValid(M.getFalse()));
}

TEST_F(SolverTest, SingleAtom) {
  expectSatWithModel(M.mkLe(x(), c(3)));
  EXPECT_FALSE(S.isValid(M.mkLe(x(), c(3))));
}

TEST_F(SolverTest, ConjunctionFastPath) {
  expectSatWithModel(M.mkAnd(M.mkGe(x(), c(2)), M.mkLe(x(), c(2))));
  EXPECT_FALSE(S.isSat(M.mkAnd(M.mkGe(x(), c(3)), M.mkLe(x(), c(2)))));
}

TEST_F(SolverTest, DisjunctionNeedsBooleanSearch) {
  const Formula *F = M.mkOr(M.mkAnd(M.mkGe(x(), c(5)), M.mkLe(x(), c(4))),
                            M.mkEq(y(), c(7)));
  Model Mo;
  ASSERT_TRUE(S.isSat(F, &Mo));
  EXPECT_EQ(Mo.at(Y), 7);
}

TEST_F(SolverTest, UnsatAcrossDisjunction) {
  // (x<=0 || x>=10) && x=5 is unsat.
  const Formula *F = M.mkAnd(M.mkOr(M.mkLe(x(), c(0)), M.mkGe(x(), c(10))),
                             M.mkEq(x(), c(5)));
  EXPECT_FALSE(S.isSat(F));
}

TEST_F(SolverTest, EqualityLowering) {
  expectSatWithModel(M.mkEq(x().add(y()), c(10)));
  EXPECT_FALSE(S.isSat(M.mkAnd(M.mkEq(x(), c(1)), M.mkEq(x(), c(2)))));
}

TEST_F(SolverTest, DisequalityLowering) {
  // x != x is unsat; x != y is sat.
  EXPECT_FALSE(S.isSat(M.mkNe(x(), x())));
  expectSatWithModel(M.mkNe(x(), y()));
}

TEST_F(SolverTest, DivisibilitySat) {
  // 3 | x and x in [4, 6] forces x = 6.
  const Formula *F = M.mkAnd(
      {M.mkDiv(3, x()), M.mkGe(x(), c(4)), M.mkLe(x(), c(6))});
  Model Mo;
  ASSERT_TRUE(S.isSat(F, &Mo));
  EXPECT_EQ(Mo.at(X), 6);
}

TEST_F(SolverTest, DivisibilityUnsat) {
  // 2 | x and 2 ∤ x.
  const Formula *F =
      M.mkAnd(M.mkDiv(2, x()), M.mkAtom(AtomRel::NDiv, x(), 2));
  EXPECT_FALSE(S.isSat(F));
}

TEST_F(SolverTest, NonDivisibilityModelIsCorrect) {
  const Formula *F = M.mkAnd({M.mkAtom(AtomRel::NDiv, x(), 5),
                              M.mkGe(x(), c(10)), M.mkLe(x(), c(11))});
  Model Mo;
  ASSERT_TRUE(S.isSat(F, &Mo));
  EXPECT_EQ(Mo.at(X), 11);
}

TEST_F(SolverTest, EntailmentBasics) {
  EXPECT_TRUE(S.entails(M.mkGe(x(), c(5)), M.mkGe(x(), c(3))));
  EXPECT_FALSE(S.entails(M.mkGe(x(), c(3)), M.mkGe(x(), c(5))));
  EXPECT_TRUE(S.entails(M.getFalse(), M.mkLe(x(), c(0))));
}

TEST_F(SolverTest, EquivalenceOfRewrites) {
  // x < 5 is equivalent to x <= 4 over the integers.
  EXPECT_TRUE(S.equivalent(M.mkLt(x(), c(5)), M.mkLe(x(), c(4))));
  // De Morgan round trip.
  const Formula *F = M.mkOr(M.mkLe(x(), c(0)), M.mkGe(y(), c(3)));
  EXPECT_TRUE(S.equivalent(F, M.mkNot(M.mkNot(F))));
}

TEST_F(SolverTest, ValidityOfCaseSplit) {
  // (x <= 5) || (x >= 6) is valid over the integers.
  EXPECT_TRUE(S.isValid(M.mkOr(M.mkLe(x(), c(5)), M.mkGe(x(), c(6)))));
  // (x <= 5) || (x >= 7) is not.
  EXPECT_FALSE(S.isValid(M.mkOr(M.mkLe(x(), c(5)), M.mkGe(x(), c(7)))));
}

TEST_F(SolverTest, PaperIntroStyleEntailment) {
  // I = (a >= 0 && i >= 0 && i > n && n >= 0), phi includes 1+i+j > 2n.
  // The entailment I |= phi fails but I && j >= n |= (1 + i + j > 2n) when
  // i > n: 1 + i + j > 1 + n + n > 2n. Check with z as j.
  VarId I = M.vars().create("i", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr Iv = LinearExpr::variable(I), Nv = LinearExpr::variable(N);
  const Formula *Inv = M.mkAnd(
      {M.mkGe(Iv, c(0)), M.mkGt(Iv, Nv), M.mkGe(Nv, c(0))});
  const Formula *Phi = M.mkGt(Iv.add(z()).addConst(1), Nv.scaled(2));
  EXPECT_FALSE(S.entails(Inv, Phi));
  EXPECT_TRUE(S.entails(M.mkAnd(Inv, M.mkGe(z(), Nv)), Phi));
}

TEST_F(SolverTest, ThreeVariableMix) {
  const Formula *F = M.mkAnd({M.mkEq(x().add(y()).add(z()), c(9)),
                              M.mkOr(M.mkLe(x(), c(0)), M.mkGe(z(), c(5))),
                              M.mkGe(y(), c(100))});
  expectSatWithModel(F);
}

// Property: random formulas — solver agrees with brute force over a box,
// restricted to formulas whose variables are boxed (so brute force is exact).
TEST_F(SolverTest, PropertyRandomFormulasAgainstBruteForce) {
  Rng R(2024);
  for (int Round = 0; Round < 150; ++Round) {
    // Random formula over x, y with small coefficients.
    std::vector<const Formula *> Atoms;
    int NumAtoms = static_cast<int>(R.range(2, 5));
    for (int I = 0; I < NumAtoms; ++I) {
      LinearExpr E = x(R.range(-3, 3)).add(y(R.range(-3, 3)))
                         .addConst(R.range(-5, 5));
      switch (R.range(0, 3)) {
      case 0:
        Atoms.push_back(M.mkAtom(AtomRel::Le, E));
        break;
      case 1:
        Atoms.push_back(M.mkAtom(AtomRel::Eq, E));
        break;
      case 2:
        Atoms.push_back(M.mkAtom(AtomRel::Ne, E));
        break;
      default:
        Atoms.push_back(M.mkAtom(AtomRel::Div, E, R.range(2, 4)));
        break;
      }
    }
    // Random and/or tree plus a bounding box.
    const Formula *Core = R.chance(0.5)
                              ? M.mkOr(M.mkAnd(Atoms[0], Atoms[1]),
                                       Atoms[static_cast<size_t>(
                                           R.range(0, NumAtoms - 1))])
                              : M.mkAnd(M.mkOr(Atoms[0], Atoms[1]),
                                        Atoms[static_cast<size_t>(
                                            R.range(0, NumAtoms - 1))]);
    const Formula *Box =
        M.mkAnd({M.mkGe(x(), c(-5)), M.mkLe(x(), c(5)), M.mkGe(y(), c(-5)),
                 M.mkLe(y(), c(5))});
    const Formula *F = M.mkAnd(Core, Box);
    bool Expected = false;
    for (int64_t VX = -5; VX <= 5 && !Expected; ++VX)
      for (int64_t VY = -5; VY <= 5 && !Expected; ++VY)
        Expected = evaluate(F, [&](VarId V) { return V == X ? VX : VY; });
    Model Mo;
    bool Got = S.isSat(F, &Mo);
    ASSERT_EQ(Got, Expected) << "round " << Round;
    if (Got) {
      EXPECT_TRUE(evaluate(F, [&](VarId V) {
        auto It = Mo.find(V);
        return It == Mo.end() ? int64_t(0) : It->second;
      }));
    }
  }
}

} // namespace
