//===- tests/study/BenchmarkSuiteTest.cpp - The 11-problem corpus -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certifies the benchmark corpus underlying the Figure 7 reproduction:
/// every problem parses, is initially *undecided* (the analysis reports a
/// potential but not certain error, as the paper requires of its
/// benchmarks), has the declared ground-truth classification (checked by
/// exhaustive concrete execution), and is classified correctly by the
/// Figure 6 loop with a sound oracle within a handful of queries.
///
//===----------------------------------------------------------------------===//

#include "study/Benchmarks.h"

#include "core/ErrorDiagnoser.h"
#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

class BenchmarkSuiteTest : public ::testing::TestWithParam<BenchmarkInfo> {};

TEST_P(BenchmarkSuiteTest, LoadsAndParses) {
  const BenchmarkInfo &B = GetParam();
  ErrorDiagnoser D;
  LoadResult L = D.loadFile(benchmarkPath(B));
  ASSERT_TRUE(L) << L.message();
  EXPECT_GE(lang::programLoc(D.program()), 8u);
}

TEST_P(BenchmarkSuiteTest, InitiallyUndecided) {
  // The paper: "The analysis we performed initially reports potential, but
  // not certain, errors on all eleven benchmarks."
  const BenchmarkInfo &B = GetParam();
  ErrorDiagnoser D;
  LoadResult L = D.loadFile(benchmarkPath(B));
  ASSERT_TRUE(L) << L.message();
  EXPECT_FALSE(D.dischargedByAnalysis()) << B.Name;
  EXPECT_FALSE(D.validatedByAnalysis()) << B.Name;
}

TEST_P(BenchmarkSuiteTest, GroundTruthMatchesDeclaredClassification) {
  const BenchmarkInfo &B = GetParam();
  ErrorDiagnoser D;
  LoadResult L = D.loadFile(benchmarkPath(B));
  ASSERT_TRUE(L) << L.message();
  auto Truth = D.makeConcreteOracle();
  ASSERT_TRUE(Truth->anyCompletedRun()) << B.Name;
  EXPECT_EQ(Truth->anyFailingRun(), B.IsRealBug) << B.Name;
}

TEST_P(BenchmarkSuiteTest, SoundOracleClassifiesCorrectly) {
  const BenchmarkInfo &B = GetParam();
  ErrorDiagnoser D;
  LoadResult L = D.loadFile(benchmarkPath(B));
  ASSERT_TRUE(L) << L.message();
  auto Truth = D.makeConcreteOracle();
  DiagnosisResult R = D.diagnose(*Truth);
  DiagnosisOutcome Expect = B.IsRealBug ? DiagnosisOutcome::Validated
                                        : DiagnosisOutcome::Discharged;
  EXPECT_EQ(R.Outcome, Expect) << B.Name;
  // The paper reports 1-3 queries per benchmark; allow a little slack.
  EXPECT_GE(R.Transcript.size(), 1u) << B.Name;
  EXPECT_LE(R.Transcript.size(), 5u) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSuiteTest,
                         ::testing::ValuesIn(benchmarkSuite()),
                         [](const ::testing::TestParamInfo<BenchmarkInfo> &I) {
                           return I.param.Name;
                         });

TEST(BenchmarkRegistryTest, SuiteShapeMatchesFigure7) {
  const auto &Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 11u);
  int RealBugs = 0, Synthetic = 0;
  for (const BenchmarkInfo &B : Suite) {
    RealBugs += B.IsRealBug ? 1 : 0;
    Synthetic += B.Synthetic ? 1 : 0;
  }
  EXPECT_EQ(RealBugs, 5) << "Figure 7: five real bugs";
  EXPECT_EQ(Synthetic, 6) << "Figure 7: six synthetic problems";
}

} // namespace
