//===- tests/study/CorpusTest.cpp - Certified corpus generator --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator's contract: byte-identical determinism per (seed, index),
/// per-index random access agreeing with generateAll(), full coverage of
/// every (cause, classification) pair over a cycle of indices, and -- the
/// certification bar itself, re-verified with a fresh diagnoser -- every
/// accepted program is initially undecided while exhaustive concrete
/// execution confirms its declared classification. Also covers manifest
/// round-tripping through writeCorpus()/loadManifest(), triage-queue
/// expansion, and end-to-end manifest reproduction at jobs 1 and jobs 4.
///
//===----------------------------------------------------------------------===//

#include "study/Corpus.h"

#include "core/ErrorDiagnoser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

CorpusOptions smallOptions(uint64_t Seed = 1, size_t Count = 8) {
  CorpusOptions Opts;
  Opts.Seed = Seed;
  Opts.Count = Count;
  return Opts;
}

/// Options cycling every cause, including the opt-in interprocedural and
/// don't-know templates (the default list keeps the classic four so
/// existing seeded corpora stay byte-stable).
CorpusOptions allCauseOptions(uint64_t Seed, size_t Count) {
  CorpusOptions Opts = smallOptions(Seed, Count);
  Opts.Causes = {ReportCause::ImpreciseInvariant,
                 ReportCause::MissingAnnotation,
                 ReportCause::NonLinearArithmetic,
                 ReportCause::EnvironmentFact,
                 ReportCause::SummarizedCall,
                 ReportCause::UnknownAnswer};
  return Opts;
}

/// Re-certifies one program with a diagnoser that shares no state with the
/// generator: the certification result must be a property of the bytes.
void expectCertified(const CorpusProgram &P) {
  ErrorDiagnoser D;
  LoadResult L = D.loadSource(P.Source);
  ASSERT_TRUE(L) << P.Name << ": " << L.message();
  EXPECT_FALSE(D.dischargedByAnalysis()) << P.Name;
  EXPECT_FALSE(D.validatedByAnalysis()) << P.Name;
  auto Truth = D.makeConcreteOracle();
  ASSERT_TRUE(Truth->anyCompletedRun()) << P.Name;
  EXPECT_EQ(Truth->anyFailingRun(), P.IsRealBug) << P.Name;
}

TEST(CorpusDeterminismTest, SameSeedSameBytes) {
  CorpusGenerator A(smallOptions(42, 8)), B(smallOptions(42, 8));
  auto ProgsA = A.generateAll(), ProgsB = B.generateAll();
  ASSERT_EQ(ProgsA.size(), 8u);
  ASSERT_EQ(ProgsA.size(), ProgsB.size());
  for (size_t I = 0; I < ProgsA.size(); ++I) {
    EXPECT_EQ(ProgsA[I].Name, ProgsB[I].Name);
    EXPECT_EQ(ProgsA[I].Source, ProgsB[I].Source) << ProgsA[I].Name;
    EXPECT_EQ(ProgsA[I].ProgramSeed, ProgsB[I].ProgramSeed);
    EXPECT_EQ(manifestRow(ProgsA[I]), manifestRow(ProgsB[I]));
  }
}

TEST(CorpusDeterminismTest, DifferentSeedsDiffer) {
  CorpusGenerator A(smallOptions(1, 4)), B(smallOptions(2, 4));
  auto ProgsA = A.generateAll(), ProgsB = B.generateAll();
  size_t Identical = 0;
  for (size_t I = 0; I < 4; ++I)
    Identical += ProgsA[I].Source == ProgsB[I].Source;
  EXPECT_LT(Identical, 4u) << "seed must influence the program bytes";
}

TEST(CorpusDeterminismTest, PerIndexAccessMatchesGenerateAll) {
  // generate(I) on a fresh generator must agree with the I-th program of a
  // full run: random access is what makes failing seeds replayable.
  CorpusGenerator Full(smallOptions(7, 6));
  auto All = Full.generateAll();
  for (size_t I : {size_t(0), size_t(3), size_t(5)}) {
    CorpusGenerator Fresh(smallOptions(7, 6));
    CorpusProgram P = Fresh.generate(I);
    EXPECT_EQ(P.Source, All[I].Source) << "index " << I;
    EXPECT_EQ(P.Name, All[I].Name);
    EXPECT_EQ(P.ProgramSeed, All[I].ProgramSeed);
  }
}

TEST(CorpusCoverageTest, EveryCauseAndClassificationProduced) {
  // Causes cycle per index and classification alternates per cycle, so 12
  // programs over all 6 causes hit every (cause, classification) pair.
  CorpusGenerator Gen(allCauseOptions(3, 2 * NumReportCauses));
  auto Progs = Gen.generateAll();
  std::set<std::pair<ReportCause, bool>> Seen;
  for (const CorpusProgram &P : Progs)
    Seen.insert({P.Cause, P.IsRealBug});
  EXPECT_EQ(Seen.size(), 2 * NumReportCauses);
  for (size_t C = 0; C < NumReportCauses; ++C) {
    EXPECT_TRUE(Seen.count({static_cast<ReportCause>(C), true}))
        << causeName(static_cast<ReportCause>(C)) << " bug missing";
    EXPECT_TRUE(Seen.count({static_cast<ReportCause>(C), false}))
        << causeName(static_cast<ReportCause>(C)) << " alarm missing";
  }
}

TEST(CorpusCoverageTest, CauseSubsetRespected) {
  CorpusOptions Opts = smallOptions(5, 6);
  Opts.Causes = {ReportCause::NonLinearArithmetic};
  CorpusGenerator Gen(Opts);
  for (const CorpusProgram &P : Gen.generateAll())
    EXPECT_EQ(P.Cause, ReportCause::NonLinearArithmetic) << P.Name;
}

TEST(CorpusCoverageTest, CauseNamesRoundTrip) {
  for (size_t C = 0; C < NumReportCauses; ++C) {
    auto Cause = static_cast<ReportCause>(C);
    auto FromLong = causeFromName(causeName(Cause));
    auto FromShort = causeFromName(causeToken(Cause));
    ASSERT_TRUE(FromLong.has_value());
    ASSERT_TRUE(FromShort.has_value());
    EXPECT_EQ(*FromLong, Cause);
    EXPECT_EQ(*FromShort, Cause);
  }
  EXPECT_FALSE(causeFromName("no_such_cause").has_value());
}

// Each accepted program re-certifies with a completely fresh diagnoser.
class CorpusCertificationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusCertificationTest, AcceptedProgramsAreCertified) {
  size_t CauseIdx = GetParam();
  CorpusOptions Opts = smallOptions(11, 4); // 4 programs: 2 bugs, 2 alarms
  Opts.Causes = {static_cast<ReportCause>(CauseIdx)};
  CorpusGenerator Gen(Opts);
  for (const CorpusProgram &P : Gen.generateAll()) {
    SCOPED_TRACE(P.Name);
    expectCertified(P);
  }
  const CauseStats &S = Gen.stats().PerCause[CauseIdx];
  EXPECT_EQ(S.Accepted, 4u);
  EXPECT_GE(S.Candidates, S.Accepted);
}

INSTANTIATE_TEST_SUITE_P(AllCauses, CorpusCertificationTest,
                         ::testing::Range(size_t(0), NumReportCauses),
                         [](const ::testing::TestParamInfo<size_t> &I) {
                           return causeName(
                               static_cast<ReportCause>(I.param));
                         });

TEST(CorpusCertificationTest, UnknownAnswerProgramsHitTheDontKnowPath) {
  // The unknown_answer template's third certification bar, re-checked from
  // the bytes alone: an honest concrete oracle must answer "I don't know"
  // at least once (the cold branch leaves a loop-exit alpha unrecorded)
  // and diagnosis must still reach the certified verdict.
  CorpusOptions Opts = smallOptions(31, 4);
  Opts.Causes = {ReportCause::UnknownAnswer};
  for (const CorpusProgram &P : CorpusGenerator(Opts).generateAll()) {
    SCOPED_TRACE(P.Name);
    ErrorDiagnoser D;
    ASSERT_TRUE(D.loadSource(P.Source));
    auto O = D.makeConcreteOracle();
    DiagnosisResult R = D.diagnose(*O);
    bool SawUnknown = false;
    for (const QueryRecord &Q : R.Transcript)
      SawUnknown |= Q.Ans == Oracle::Answer::Unknown;
    EXPECT_TRUE(SawUnknown);
    EXPECT_EQ(R.Outcome, P.IsRealBug ? DiagnosisOutcome::Validated
                                     : DiagnosisOutcome::Discharged);
  }
}

TEST(CorpusCertificationTest, SampledFromThousandProgramCorpus) {
  // The acceptance-criterion corpus is seed 1 x 1000 programs; spot-check
  // scattered indices via per-index random access (generating all 1000
  // would work but costs ~0.5s -- random access keeps this test tight and
  // simultaneously exercises the replay path).
  CorpusOptions Opts = smallOptions(1, 1000);
  for (size_t Index : {size_t(0), size_t(123), size_t(499), size_t(998)}) {
    CorpusGenerator Gen(Opts);
    CorpusProgram P = Gen.generate(Index);
    SCOPED_TRACE(P.Name);
    EXPECT_EQ(P.Index, Index);
    EXPECT_EQ(P.Cause, Gen.causeFor(Index));
    EXPECT_EQ(P.IsRealBug, Gen.wantBugFor(Index));
    expectCertified(P);
  }
}

class CorpusDirTest : public ::testing::Test {
protected:
  std::filesystem::path Dir;

  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("abdiag_corpus_test_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }
};

TEST_F(CorpusDirTest, ManifestRoundTrips) {
  CorpusGenerator Gen(smallOptions(9, 8));
  auto Progs = Gen.generateAll();
  ASSERT_EQ(writeCorpus(Dir.string(), Progs), "");

  ManifestLoadResult M = loadManifest((Dir / "manifest.jsonl").string());
  ASSERT_TRUE(M) << M.Error;
  ASSERT_EQ(M.Entries.size(), Progs.size());
  for (size_t I = 0; I < Progs.size(); ++I) {
    EXPECT_EQ(M.Entries[I].File, Progs[I].FileName);
    EXPECT_EQ(M.Entries[I].Name, Progs[I].Name);
    EXPECT_EQ(M.Entries[I].Seed, Progs[I].ProgramSeed);
    EXPECT_EQ(M.Entries[I].Cause, Progs[I].Cause);
    EXPECT_EQ(M.Entries[I].IsRealBug, Progs[I].IsRealBug);
  }
}

TEST_F(CorpusDirTest, WrittenFilesReloadByteIdentical) {
  CorpusGenerator Gen(smallOptions(13, 4));
  auto Progs = Gen.generateAll();
  ASSERT_EQ(writeCorpus(Dir.string(), Progs), "");
  for (const CorpusProgram &P : Progs) {
    std::ifstream In(Dir / P.FileName, std::ios::binary);
    std::string OnDisk((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(OnDisk, P.Source) << P.FileName;
  }
}

TEST_F(CorpusDirTest, DirectoryExpansionFindsSortedAdgFiles) {
  CorpusGenerator Gen(smallOptions(17, 4));
  auto Progs = Gen.generateAll();
  ASSERT_EQ(writeCorpus(Dir.string(), Progs), "");

  QueueExpansion Q = expandPathArgument(Dir.string());
  ASSERT_TRUE(Q) << Q.Error;
  ASSERT_EQ(Q.Requests.size(), Progs.size());
  EXPECT_TRUE(Q.Expected.empty()) << "directories carry no ground truth";
  for (size_t I = 1; I < Q.Requests.size(); ++I)
    EXPECT_LT(Q.Requests[I - 1].Name, Q.Requests[I].Name) << "sorted order";
}

TEST_F(CorpusDirTest, ManifestExpansionCarriesExpectations) {
  CorpusGenerator Gen(smallOptions(19, 4));
  auto Progs = Gen.generateAll();
  ASSERT_EQ(writeCorpus(Dir.string(), Progs), "");

  QueueExpansion Q =
      expandManifestArgument((Dir / "manifest.jsonl").string());
  ASSERT_TRUE(Q) << Q.Error;
  ASSERT_EQ(Q.Requests.size(), Progs.size());
  ASSERT_EQ(Q.Expected.size(), Progs.size());
  for (size_t I = 0; I < Progs.size(); ++I) {
    EXPECT_EQ(Q.Requests[I].Name, Progs[I].Name);
    EXPECT_EQ(Q.Expected[I].Name, Progs[I].Name);
    EXPECT_EQ(Q.Expected[I].IsRealBug, Progs[I].IsRealBug);
  }
}

TEST_F(CorpusDirTest, TriageReproducesManifestAtOneAndFourJobs) {
  // The acceptance criterion in miniature: triage over the written corpus
  // must reproduce the certified classifications at --jobs 1 and --jobs 4.
  CorpusGenerator Gen(smallOptions(23, 8));
  auto Progs = Gen.generateAll();
  ASSERT_EQ(writeCorpus(Dir.string(), Progs), "");
  QueueExpansion Q =
      expandManifestArgument((Dir / "manifest.jsonl").string());
  ASSERT_TRUE(Q) << Q.Error;

  for (unsigned Jobs : {1u, 4u}) {
    TriageOptions Opts;
    Opts.Jobs = Jobs;
    TriageResult R = TriageEngine(Opts).run(Q.Requests);
    ASSERT_EQ(R.Reports.size(), Progs.size());
    for (size_t I = 0; I < R.Reports.size(); ++I) {
      const TriageReport &Rep = R.Reports[I];
      ASSERT_EQ(Rep.Status, TriageStatus::Diagnosed)
          << Rep.Name << " jobs=" << Jobs << ": " << Rep.Message;
      DiagnosisOutcome Expect = Q.Expected[I].IsRealBug
                                    ? DiagnosisOutcome::Validated
                                    : DiagnosisOutcome::Discharged;
      EXPECT_EQ(Rep.Outcome, Expect) << Rep.Name << " jobs=" << Jobs;
    }
  }
}

TEST(CorpusErrorTest, MissingManifestReportsError) {
  ManifestLoadResult M = loadManifest("/nonexistent/manifest.jsonl");
  EXPECT_FALSE(M);
  EXPECT_FALSE(M.Error.empty());

  QueueExpansion Q = expandPathArgument("/nonexistent/dir-or-file.adg");
  // A plain nonexistent path is forwarded as a file request (the triage
  // engine reports the LoadError row); only unreadable directories and
  // manifests fail at expansion time.
  EXPECT_TRUE(Q) << Q.Error;
  ASSERT_EQ(Q.Requests.size(), 1u);
}

} // namespace
