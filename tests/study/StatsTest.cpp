//===- tests/study/StatsTest.cpp - Statistics unit tests --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/Stats.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace abdiag;
using namespace abdiag::study;

namespace {

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> Xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(Xs), 5.0);
  EXPECT_NEAR(sampleVariance(Xs), 4.571428571, 1e-6);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sampleVariance({3.0}), 0.0);
}

TEST(StatsTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(regularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-9);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularizedIncompleteBeta(2, 2, 0.4), 0.16 * (3 - 0.8), 1e-9);
  // Boundary behavior.
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(StatsTest, StudentTCdfAgainstTables) {
  // nu = 10: P(T <= 1.812) ~= 0.95 (one-tailed critical value).
  EXPECT_NEAR(studentTCdf(1.812, 10), 0.95, 2e-3);
  // nu = 1 (Cauchy): P(T <= 1) = 0.75.
  EXPECT_NEAR(studentTCdf(1.0, 1), 0.75, 1e-6);
  // Symmetry.
  EXPECT_NEAR(studentTCdf(-1.3, 7) + studentTCdf(1.3, 7), 1.0, 1e-9);
}

TEST(StatsTest, WelchIdenticalSamplesGiveHighP) {
  std::vector<double> A = {1, 2, 3, 4, 5};
  TTestResult R = welchTTest(A, A);
  EXPECT_NEAR(R.T, 0.0, 1e-12);
  EXPECT_GT(R.PValue, 0.99);
}

TEST(StatsTest, WelchSeparatedSamplesGiveLowP) {
  std::vector<double> A, B;
  Rng R(11);
  for (int I = 0; I < 50; ++I) {
    A.push_back(R.gaussian(0, 1));
    B.push_back(R.gaussian(5, 1));
  }
  TTestResult T = welchTTest(A, B);
  EXPECT_LT(T.PValue, 1e-10);
  EXPECT_LT(T.T, 0);
}

TEST(StatsTest, WelchKnownExample) {
  // Classic worked example (unequal variances).
  std::vector<double> A = {27.5, 21.0, 19.0, 23.6, 17.0, 17.9,
                           16.9, 20.1, 21.9, 22.6, 23.1, 19.6};
  std::vector<double> B = {27.1, 22.0, 20.8, 23.4, 23.4, 23.5,
                           25.8, 22.0, 24.8, 20.2, 21.9, 22.1};
  TTestResult T = welchTTest(A, B);
  EXPECT_NEAR(T.T, -2.0, 0.15);
  EXPECT_GT(T.PValue, 0.01);
  EXPECT_LT(T.PValue, 0.12);
}

TEST(StatsTest, PValueFalsePositiveRateIsCalibrated) {
  // Under the null hypothesis, p-values should be roughly uniform: the
  // fraction below 0.05 should be near 5%.
  Rng R(99);
  int Below = 0;
  const int Trials = 400;
  for (int T = 0; T < Trials; ++T) {
    std::vector<double> A, B;
    for (int I = 0; I < 20; ++I) {
      A.push_back(R.gaussian(0, 1));
      B.push_back(R.gaussian(0, 1));
    }
    if (welchTTest(A, B).PValue < 0.05)
      ++Below;
  }
  EXPECT_GT(Below, 4);
  EXPECT_LT(Below, 45);
}

} // namespace
