//===- tests/study/StudyRunnerTest.cpp - Study simulation tests -------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/StudyRunner.h"

#include "core/Oracle.h"
#include "smt/Formula.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

/// A fast configuration for tests.
StudyConfig testConfig() {
  StudyConfig C;
  C.RespondentsPerArm = 8;
  return C;
}

TEST(HumanModelTest, ManualDifficultyMonotonicity) {
  // With many draws, harder problems must be classified correctly less
  // often and take longer on average.
  ManualModelParams P;
  Rng R(5);
  int EasyCorrect = 0, HardCorrect = 0;
  double EasyTime = 0, HardTime = 0;
  const int N = 4000;
  for (int I = 0; I < N; ++I) {
    ManualClassification E = drawManualClassification(R, 0.0, P);
    ManualClassification H = drawManualClassification(R, 1.0, P);
    EasyCorrect += E.V == ManualClassification::Verdict::Correct;
    HardCorrect += H.V == ManualClassification::Verdict::Correct;
    EasyTime += E.Seconds;
    HardTime += H.Seconds;
  }
  EXPECT_GT(EasyCorrect, HardCorrect);
  EXPECT_LT(EasyTime / N, HardTime / N);
  // Rates near the configured probabilities.
  EXPECT_NEAR(EasyCorrect / double(N), P.CorrectAtEasiest, 0.03);
  EXPECT_NEAR(HardCorrect / double(N), P.CorrectAtEasiest - P.CorrectSlope,
              0.03);
}

TEST(HumanModelTest, AssistedOracleMostlyTruthful) {
  // The noisy human should agree with the ground truth most of the time on
  // one-variable queries.
  smt::FormulaManager M;
  smt::VarId X = M.vars().create("x", smt::VarKind::Input);
  const smt::Formula *F =
      M.mkGe(smt::LinearExpr::variable(X), smt::LinearExpr::constant(0));
  FunctionOracle Truth([](const smt::Formula *) { return Oracle::Answer::Yes; },
                       [](const smt::Formula *, const smt::Formula *) {
                         return Oracle::Answer::Yes;
                       });
  int Agree = 0;
  const int N = 3000;
  AssistedModelParams Params;
  Rng Root(9);
  for (int I = 0; I < N; ++I) {
    SimulatedHumanOracle H(Truth, Root.fork(static_cast<uint64_t>(I)), Params);
    if (H.isInvariant(F) == Oracle::Answer::Yes)
      ++Agree;
  }
  double Rate = Agree / double(N);
  EXPECT_GT(Rate, 1.0 - Params.BaseErrorRate - Params.UnknownRate - 0.02);
  EXPECT_LT(Rate, 1.0);
}

TEST(StudyRunnerTest, DeterministicForFixedSeed) {
  StudyResult A = runStudy(testConfig());
  StudyResult B = runStudy(testConfig());
  ASSERT_EQ(A.Problems.size(), B.Problems.size());
  for (size_t I = 0; I < A.Problems.size(); ++I) {
    EXPECT_EQ(A.Problems[I].Assisted.PctCorrect,
              B.Problems[I].Assisted.PctCorrect);
    EXPECT_EQ(A.Problems[I].Manual.AvgSeconds,
              B.Problems[I].Manual.AvgSeconds);
  }
  EXPECT_EQ(A.AccuracyTest.PValue, B.AccuracyTest.PValue);
}

TEST(StudyRunnerTest, SeedChangesOutcomes) {
  StudyConfig C1 = testConfig(), C2 = testConfig();
  C2.Seed = 999;
  StudyResult A = runStudy(C1);
  StudyResult B = runStudy(C2);
  bool AnyDifferent = false;
  for (size_t I = 0; I < A.Problems.size(); ++I)
    AnyDifferent = AnyDifferent ||
                   A.Problems[I].Manual.AvgSeconds !=
                       B.Problems[I].Manual.AvgSeconds;
  EXPECT_TRUE(AnyDifferent);
}

TEST(StudyRunnerTest, ShapeMatchesPaper) {
  // The headline reproduction claims, asserted as ranges so seeds cannot
  // silently drift the result: manual near chance, assisted near 90%, and
  // the assisted arm several times faster.
  StudyResult R = runStudy(StudyConfig());
  EXPECT_GT(R.ManualAvg.PctCorrect, 20.0);
  EXPECT_LT(R.ManualAvg.PctCorrect, 45.0);
  EXPECT_GT(R.AssistedAvg.PctCorrect, 80.0);
  EXPECT_LT(R.AssistedAvg.PctWrong, 15.0);
  EXPECT_GT(R.ManualAvg.AvgSeconds, 3 * R.AssistedAvg.AvgSeconds);
  EXPECT_LT(R.AccuracyTestPerProblem.PValue, 1e-4);
  EXPECT_LT(R.TimeTest.PValue, 1e-10);
  // Percentages per arm sum to 100.
  for (const ProblemResult &P : R.Problems) {
    EXPECT_NEAR(P.Manual.PctCorrect + P.Manual.PctWrong + P.Manual.PctUnknown,
                100.0, 1e-6);
    EXPECT_NEAR(P.Assisted.PctCorrect + P.Assisted.PctWrong +
                    P.Assisted.PctUnknown,
                100.0, 1e-6);
  }
}

TEST(StudyRunnerTest, Figure7Rendering) {
  StudyResult R = runStudy(testConfig());
  std::string Table = formatFigure7(R);
  EXPECT_NE(Table.find("p06_chroot_optind"), std::string::npos);
  EXPECT_NE(Table.find("(paper)"), std::string::npos);
  EXPECT_NE(Table.find("Welch t-test"), std::string::npos);
  std::string NoPaper = formatFigure7(R, /*IncludePaperRows=*/false);
  EXPECT_EQ(NoPaper.find("   (paper)"), std::string::npos);
}

TEST(StudyRunnerTest, PerfectAnswersGivePerfectAccuracy) {
  StudyConfig C = testConfig();
  C.Assisted.BaseErrorRate = 0;
  C.Assisted.ErrorPerExtraVar = 0;
  C.Assisted.UnknownRate = 0;
  StudyResult R = runStudy(C);
  EXPECT_DOUBLE_EQ(R.AssistedAvg.PctCorrect, 100.0);
  EXPECT_DOUBLE_EQ(R.AssistedAvg.PctWrong, 0.0);
}

} // namespace
