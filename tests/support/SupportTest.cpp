//===- tests/support/SupportTest.cpp - Support utilities tests --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Rational.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace abdiag;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(CastingTest, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  const Base *CB = &A;
  EXPECT_TRUE(isa<DerivedA>(CB));
  EXPECT_EQ(cast<DerivedA>(CB), &A);
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, CanonicalForm) {
  Rational R(6, -4);
  EXPECT_EQ(R.num(), -3);
  EXPECT_EQ(R.den(), 2);
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_TRUE(Rational(8, 2).isInteger());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, ComparisonsAndRounding) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(1, 2).sign(), 1);
  EXPECT_EQ(Rational(-1, 2).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
}

TEST(RationalTest, LargeIntermediatesReduced) {
  // (10^9 / (10^9+1)) * ((10^9+1) / 10^9) == 1 requires 128-bit
  // intermediates with in-flight reduction.
  Rational A(1000000000, 1000000001), B(1000000001, 1000000000);
  EXPECT_EQ(A * B, Rational(1));
}

TEST(RationalTest, StringRendering) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 6).str(), "-1/2");
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  Rng A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(RngTest, RangeStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
  }
}

TEST(RngTest, UniformMeanAndChanceRate) {
  Rng R(11);
  double Sum = 0;
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    Sum += R.uniform();
    Hits += R.chance(0.25);
  }
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
  EXPECT_NEAR(Hits / double(N), 0.25, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng R(23);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.gaussian(10, 2);
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 10.0, 0.1);
  EXPECT_NEAR(Var, 4.0, 0.3);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng R(5);
  Rng A = R.fork(1), B = R.fork(2);
  EXPECT_NE(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

} // namespace
