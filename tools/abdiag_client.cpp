//===- tools/abdiag_client.cpp - Scripted abdiagd replay client --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives an abdiagd instance with scripted sessions: expands files,
// directories or a corpus manifest into a queue, replays every program
// through the daemon answering asks with a mirror concrete oracle, and
// (with --compare-batch) re-triages the same queue in-process to assert the
// daemon's verdicts are byte-identical to batch ones. Exit status: 0 on
// full success, 1 on any refused session, transport error, or verdict
// mismatch.
//
//   abdiag_client --socket /tmp/abdiag.sock --jobs 4 --compare-batch
//       --manifest corpus/manifest.jsonl
//
//===----------------------------------------------------------------------===//

#include "core/Triage.h"
#include "server/Client.h"
#include "study/Corpus.h"

#include <cstdio>
#include <cstring>
#include <thread>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::server;

namespace {

void usage() {
  std::printf(
      "usage: abdiag_client (--socket PATH | --port N) [options] INPUT...\n"
      "\n"
      "INPUT is a .adg file or a directory of them.\n"
      "  --manifest FILE       add a corpus manifest's entries to the queue\n"
      "  --jobs N              connections replaying in parallel (default 1)\n"
      "  --in-flight N         open sessions per connection (default 8)\n"
      "  --tenant NAME         tenant stamped on every submit\n"
      "  --compare-batch       also run batch triage locally and require\n"
      "                        identical verdicts\n"
      "  --backend NAME        pipeline backend for mirrors and batch\n"
      "  --quiet               summary line only\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  int Port = -1;
  unsigned Jobs = 1;
  bool CompareBatch = false;
  bool Quiet = false;
  ReplayOptions RO;
  std::vector<std::string> Inputs;
  std::vector<TriageRequest> Queue;

  auto NeedVal = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "abdiag_client: %s needs a value\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return 0;
    } else if (!std::strcmp(Arg, "--socket")) {
      SocketPath = NeedVal(I);
    } else if (!std::strcmp(Arg, "--port")) {
      Port = std::atoi(NeedVal(I));
    } else if (!std::strcmp(Arg, "--jobs")) {
      Jobs = static_cast<unsigned>(std::atoi(NeedVal(I)));
    } else if (!std::strcmp(Arg, "--in-flight")) {
      RO.MaxInFlight = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--tenant")) {
      RO.Tenant = NeedVal(I);
    } else if (!std::strcmp(Arg, "--compare-batch")) {
      CompareBatch = true;
    } else if (!std::strcmp(Arg, "--backend")) {
      RO.Pipeline.Backend = NeedVal(I);
    } else if (!std::strcmp(Arg, "--quiet")) {
      Quiet = true;
    } else if (!std::strcmp(Arg, "--manifest")) {
      study::QueueExpansion E = study::expandManifestArgument(NeedVal(I));
      if (!E) {
        std::fprintf(stderr, "abdiag_client: %s\n", E.Error.c_str());
        return 1;
      }
      Queue.insert(Queue.end(), E.Requests.begin(), E.Requests.end());
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "abdiag_client: unknown option '%s'\n", Arg);
      return 2;
    } else {
      study::QueueExpansion E = study::expandPathArgument(Arg);
      if (!E) {
        std::fprintf(stderr, "abdiag_client: %s\n", E.Error.c_str());
        return 1;
      }
      Queue.insert(Queue.end(), E.Requests.begin(), E.Requests.end());
    }
  }
  if ((SocketPath.empty() && Port < 0) || Queue.empty()) {
    usage();
    return 2;
  }
  if (Jobs == 0)
    Jobs = 1;
  if (Jobs > Queue.size())
    Jobs = static_cast<unsigned>(Queue.size());

  // Partition the queue across Jobs connections, round-robin so every
  // connection sees a similar mix.
  std::vector<std::vector<ReplayItem>> Parts(Jobs);
  std::vector<std::vector<size_t>> PartIndex(Jobs);
  for (size_t I = 0; I < Queue.size(); ++I) {
    ReplayItem It;
    It.Session = "s" + std::to_string(I);
    It.Name = Queue[I].Name;
    It.Path = Queue[I].Path;
    Parts[I % Jobs].push_back(std::move(It));
    PartIndex[I % Jobs].push_back(I);
  }

  std::vector<ReplayOutcome> All(Queue.size());
  std::vector<std::string> Errors(Jobs);
  std::vector<std::thread> Threads;
  for (unsigned J = 0; J < Jobs; ++J) {
    Threads.emplace_back([&, J] {
      ReplayClient C(RO);
      std::string Err;
      bool Connected = SocketPath.empty() ? C.connectTcpPort(Port, Err)
                                          : C.connectUnixSocket(SocketPath, Err);
      if (!Connected) {
        Errors[J] = Err;
        return;
      }
      std::vector<ReplayOutcome> Out;
      if (!C.run(Parts[J], Out, Err)) {
        Errors[J] = Err;
        return;
      }
      for (size_t K = 0; K < Out.size(); ++K)
        All[PartIndex[J][K]] = std::move(Out[K]);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (unsigned J = 0; J < Jobs; ++J)
    if (!Errors[J].empty()) {
      std::fprintf(stderr, "abdiag_client: connection %u: %s\n", J,
                   Errors[J].c_str());
      return 1;
    }

  size_t Refused = 0;
  for (const ReplayOutcome &O : All) {
    if (O.Status == "refused")
      ++Refused;
    if (!Quiet)
      std::printf("%-40s %-10s %-12s queries=%llu\n", O.Name.c_str(),
                  O.Status.c_str(),
                  O.Verdict.empty() ? "-" : O.Verdict.c_str(),
                  (unsigned long long)O.Queries);
  }

  size_t Mismatches = 0;
  if (CompareBatch) {
    TriageOptions TO;
    TO.Pipeline = RO.Pipeline;
    TO.Oracle = RO.Oracle;
    TriageResult Batch = TriageEngine(TO).run(Queue);
    for (size_t I = 0; I < Queue.size(); ++I) {
      const TriageReport &B = Batch.Reports[I];
      std::string WantStatus = triageStatusName(B.Status);
      std::string WantVerdict = B.Status == TriageStatus::Diagnosed
                                    ? diagnosisVerdictName(B.Outcome)
                                    : "";
      if (All[I].Status != WantStatus || All[I].Verdict != WantVerdict) {
        ++Mismatches;
        std::fprintf(stderr,
                     "MISMATCH %s: daemon %s/%s vs batch %s/%s\n",
                     Queue[I].Name.c_str(), All[I].Status.c_str(),
                     All[I].Verdict.c_str(), WantStatus.c_str(),
                     WantVerdict.c_str());
      }
    }
  }

  std::printf("replayed %zu sessions over %u connection(s): refused=%zu%s\n",
              All.size(), Jobs, Refused,
              CompareBatch
                  ? (", batch-mismatches=" + std::to_string(Mismatches)).c_str()
                  : "");
  return (Refused || Mismatches) ? 1 : 0;
}
