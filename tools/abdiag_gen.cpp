//===- tools/abdiag_gen.cpp - Certified corpus generator CLI -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a certified corpus of annotated mini-language programs: N `.adg`
/// files plus a `manifest.jsonl` (one row per program with file, name,
/// seed, cause, classification, loc, attempts -- the schema is documented
/// in benchmarks/README.md). Every emitted program passed certification:
/// initially undecided by the symbolic analysis, classification confirmed
/// by exhaustive concrete execution. Generation is deterministic: the same
/// seed always reproduces the same bytes.
///
/// Usage: abdiag_gen --seed 1 --count 1000 --out corpus/
///
//===----------------------------------------------------------------------===//

#include "study/Corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace abdiag;
using namespace abdiag::study;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: abdiag_gen [options] --out DIR\n"
      "\n"
      "Generate a certified corpus of potential-error report programs.\n"
      "Each program is accepted only after certification: the symbolic\n"
      "analysis reports it initially undecided AND exhaustive concrete\n"
      "execution confirms the declared classification.\n"
      "\n"
      "  --out DIR            output directory (required); receives the\n"
      "                       .adg files and manifest.jsonl\n"
      "  --seed N             corpus seed (default 1); same seed => same bytes\n"
      "  --count N            number of programs (default 100)\n"
      "  --causes LIST        comma-separated subset of report causes:\n"
      "                       imprecise_invariant, missing_annotation,\n"
      "                       non_linear_arithmetic, environment_fact,\n"
      "                       summarized_call, unknown_answer\n"
      "                       (default: the classic four, cycled per index;\n"
      "                       the last two opt in to interprocedural-summary\n"
      "                       and Section 5 don't-know reports)\n"
      "  --prefix NAME        program name prefix (default \"gen\")\n"
      "  --max-attempts N     candidate resamples per program (default 256)\n"
      "  --max-filler N       max filler statements per program (default 4)\n"
      "  --max-loop-depth N   nest bounded filler loops to depth N (default 1)\n"
      "  --no-inline          call-free corpus (no helper functions)\n"
      "  --stats              print per-cause acceptance-rate statistics\n"
      "  --quiet              suppress the per-program progress line\n");
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CorpusOptions Opts;
  std::string OutDir;
  bool ShowStats = false;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Out)) {
        std::fprintf(stderr, "abdiag_gen: %s needs a numeric argument\n", Arg);
        std::exit(2);
      }
    };
    auto NextString = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "abdiag_gen: %s needs an argument\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    uint64_t V = 0;
    if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else if (std::strcmp(Arg, "--out") == 0) {
      OutDir = NextString();
    } else if (std::strcmp(Arg, "--seed") == 0) {
      NextValue(V);
      Opts.Seed = V;
    } else if (std::strcmp(Arg, "--count") == 0) {
      NextValue(V);
      Opts.Count = static_cast<size_t>(V);
    } else if (std::strcmp(Arg, "--prefix") == 0) {
      Opts.NamePrefix = NextString();
    } else if (std::strcmp(Arg, "--max-attempts") == 0) {
      NextValue(V);
      Opts.MaxAttempts = static_cast<int>(V);
    } else if (std::strcmp(Arg, "--max-filler") == 0) {
      NextValue(V);
      Opts.Knobs.MaxFillerStmts = static_cast<int>(V);
      Opts.Knobs.MinFillerStmts =
          std::min(Opts.Knobs.MinFillerStmts, Opts.Knobs.MaxFillerStmts);
    } else if (std::strcmp(Arg, "--max-loop-depth") == 0) {
      NextValue(V);
      Opts.Knobs.MaxLoopDepth = static_cast<int>(V);
    } else if (std::strcmp(Arg, "--no-inline") == 0) {
      Opts.Knobs.MaxInlineDepth = 0;
    } else if (std::strcmp(Arg, "--causes") == 0) {
      std::string List = NextString();
      Opts.Causes.clear();
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Tok = List.substr(Pos, Comma - Pos);
        if (!Tok.empty()) {
          std::optional<ReportCause> C = causeFromName(Tok);
          if (!C) {
            std::fprintf(stderr, "abdiag_gen: unknown cause '%s'\n",
                         Tok.c_str());
            return 2;
          }
          Opts.Causes.push_back(*C);
        }
        Pos = Comma + 1;
      }
      if (Opts.Causes.empty()) {
        std::fprintf(stderr, "abdiag_gen: --causes needs at least one cause\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--stats") == 0) {
      ShowStats = true;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "abdiag_gen: unknown option '%s'\n", Arg);
      printUsage();
      return 2;
    }
  }
  if (OutDir.empty()) {
    std::fprintf(stderr, "abdiag_gen: --out DIR is required\n");
    printUsage();
    return 2;
  }

  try {
    CorpusGenerator Gen(Opts);
    size_t Done = 0;
    std::vector<CorpusProgram> Programs =
        Gen.generateAll([&](const CorpusProgram &P) {
          ++Done;
          if (!Quiet && (Done % 50 == 0 || Done == Opts.Count))
            std::fprintf(stderr, "abdiag_gen: %zu/%zu certified (last: %s)\n",
                         Done, Opts.Count, P.Name.c_str());
        });
    if (std::string Err = writeCorpus(OutDir, Programs); !Err.empty()) {
      std::fprintf(stderr, "abdiag_gen: %s\n", Err.c_str());
      return 1;
    }
    if (ShowStats) {
      std::printf("%-24s %9s %10s %8s  rejected (decided/truth/noruns)\n",
                  "cause", "accepted", "candidates", "accept%");
      for (size_t I = 0; I < NumReportCauses; ++I) {
        const CauseStats &S = Gen.stats().PerCause[I];
        if (!S.Candidates)
          continue;
        std::printf("%-24s %9zu %10zu %7.1f%%  %zu/%zu/%zu\n",
                    causeName(static_cast<ReportCause>(I)), S.Accepted,
                    S.Candidates, 100.0 * S.acceptanceRate(), S.RejectedDecided,
                    S.RejectedTruth, S.RejectedNoRuns);
      }
      const CauseStats T = Gen.stats().total();
      std::printf("%-24s %9zu %10zu %7.1f%%\n", "total", T.Accepted,
                  T.Candidates, 100.0 * T.acceptanceRate());
    }
    if (!Quiet)
      std::fprintf(stderr, "abdiag_gen: wrote %zu programs + manifest to %s\n",
                   Programs.size(), OutDir.c_str());
    return 0;
  } catch (const CorpusError &E) {
    std::fprintf(stderr, "abdiag_gen: %s\n", E.what());
    return 1;
  }
}
