//===- tools/abdiag_triage.cpp - Batch triage command-line tool --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CI-style driver over core/Triage: triage a queue of `.adg` potential
/// error reports in parallel, under a per-report deadline, with either a
/// human-readable table or machine-readable JSONL rows (one JSON object per
/// report; see benchmarks/README.md for the schema).
///
/// Usage: abdiag_triage [options] [file.adg ...]
/// (defaults to the 11-problem study suite when no files are given)
///
//===----------------------------------------------------------------------===//

#include "core/Triage.h"
#include "smt/DecisionProcedure.h"
#include "study/Benchmarks.h"
#include "study/Corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace abdiag;
using namespace abdiag::core;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: abdiag_triage [options] [file.adg | directory ...]\n"
      "\n"
      "Triage a queue of potential-error reports. Positional arguments may\n"
      "be .adg files or directories (expanded to every .adg inside, sorted\n"
      "by name). With no inputs, runs the 11-problem study suite.\n"
      "\n"
      "input:\n"
      "  --manifest FILE      triage a generated corpus from its\n"
      "                       manifest.jsonl (see abdiag_gen); verdicts are\n"
      "                       checked against the manifest classifications\n"
      "                       and a contradiction fails the run\n"
      "  --strict-manifest    also fail when a manifest report times out or\n"
      "                       stays inconclusive (default: contradictions\n"
      "                       only)\n"
      "\n"
      "backend:\n"
      "  --backend NAME       decision procedure: native (default), z3, or\n"
      "                       differential (native vs z3, abort on mismatch)\n"
      "  --list-backends      list registered backends and availability\n"
      "\n"
      "scheduling:\n"
      "  --jobs N             worker threads (default 1; 0 = all cores)\n"
      "  --deadline-ms MS     per-report wall-clock deadline (default: none)\n"
      "  --no-escalate        skip the 4x-budget retry of inconclusive "
      "reports\n"
      "\n"
      "oracle:\n"
      "  --inject-unknown R   override a deterministic fraction R (0..1) of\n"
      "                       oracle answers with 'unknown', exercising the\n"
      "                       Section 5 potential-invariant/-witness path;\n"
      "                       selection hashes the report name and query\n"
      "                       index, so verdicts are --jobs independent\n"
      "\n"
      "output:\n"
      "  --stats              per-report and aggregate solver counters\n"
      "  --json               JSONL: one JSON object per report on stdout\n"
      "\n"
      "pipeline (see core/Options.h):\n"
      "  --inline-calls       lower calls by exhaustive inlining instead of\n"
      "                       the default function summaries (rejects\n"
      "                       recursive programs; useful for checking that\n"
      "                       both modes produce identical verdicts)\n"
      "  --max-iterations N   Figure 6 iteration budget (default 16)\n"
      "  --max-queries N      oracle interaction budget (default 64)\n"
      "  --msa-max-subsets N  MSA subset-search budget (default 4096)\n"
      "  --simplex-max-pivots N\n"
      "                       simplex pivot budget per LIA check in the\n"
      "                       native engine (default 20000)\n"
      "  --costs MODEL        abduction cost model: paper|uniform|swapped\n"
      "  --no-auto-annotate   do not infer @p' annotations for bare loops\n"
      "  --no-decompose       do not split queries into subqueries\n"
      "  --no-simplify        do not simplify abduced formulas modulo I\n"
      "  --no-learn           do not integrate facts from subqueries\n"
      "  --no-incremental-msa fresh solver queries per MSA subset\n");
}

/// JSON string escaping (control characters, quotes, backslashes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const char *verdictName(const TriageReport &R) {
  if (R.Status != TriageStatus::Diagnosed)
    return nullptr;
  return diagnosisVerdictName(R.Outcome);
}

std::string humanVerdict(const TriageReport &R) {
  switch (R.Status) {
  case TriageStatus::LoadError:
    return "load error: " + R.Message;
  case TriageStatus::Timeout:
    return "TIMEOUT (" + R.Message + ")";
  case TriageStatus::Crashed:
    return "CRASHED (" + R.Message + ")";
  case TriageStatus::Cancelled:
    return "CANCELLED (" + R.Message + ")";
  case TriageStatus::Diagnosed:
    break;
  }
  std::string V;
  switch (R.Outcome) {
  case DiagnosisOutcome::Discharged:
    V = "false alarm";
    break;
  case DiagnosisOutcome::Validated:
    V = "REAL BUG";
    break;
  case DiagnosisOutcome::Inconclusive:
    V = "needs human review";
    break;
  }
  if (R.AnalysisAlone)
    V += " (analysis alone)";
  if (R.Escalated)
    V += " [escalated]";
  return V;
}

/// Version of the triage JSONL row schema; bump on breaking changes only
/// (removed/renamed fields) -- readers tolerate unknown keys, so additive
/// fields do not bump it. See benchmarks/README.md.
constexpr int kTriageRowSchema = 1;

void printJsonRow(const TriageReport &R, const char *Expected) {
  std::string Row = "{";
  Row += "\"schema\":" + std::to_string(kTriageRowSchema);
  Row += ",\"name\":\"" + jsonEscape(R.Name) + "\"";
  Row += ",\"path\":\"" + jsonEscape(R.Path) + "\"";
  Row += ",\"status\":\"" + std::string(triageStatusName(R.Status)) + "\"";
  if (const char *V = verdictName(R))
    Row += ",\"verdict\":\"" + std::string(V) + "\"";
  else
    Row += ",\"verdict\":null";
  if (Expected)
    Row += ",\"expected\":\"" + std::string(Expected) + "\"";
  if (!R.Message.empty())
    Row += ",\"message\":\"" + jsonEscape(R.Message) + "\"";
  if (R.Status == TriageStatus::LoadError && R.LoadDiag.hasPosition()) {
    Row += ",\"line\":" + std::to_string(R.LoadDiag.Line);
    Row += ",\"col\":" + std::to_string(R.LoadDiag.Col);
  }
  Row += ",\"loc\":" + std::to_string(R.Loc);
  Row += ",\"queries\":" + std::to_string(R.Queries);
  Row += ",\"answers\":{";
  Row += "\"" + std::string(answerName(Answer::Yes)) +
         "\":" + std::to_string(R.AnswersYes);
  Row += ",\"" + std::string(answerName(Answer::No)) +
         "\":" + std::to_string(R.AnswersNo);
  Row += ",\"" + std::string(answerName(Answer::Unknown)) +
         "\":" + std::to_string(R.AnswersUnknown);
  Row += "}";
  Row += ",\"potential_invariants\":" + std::to_string(R.PotentialInvariants);
  Row += ",\"potential_witnesses\":" + std::to_string(R.PotentialWitnesses);
  Row += ",\"summaries\":{";
  Row += "\"computed\":" + std::to_string(R.SummariesComputed);
  Row += ",\"instantiated\":" + std::to_string(R.SummariesInstantiated);
  Row += ",\"opaque_calls\":" + std::to_string(R.OpaqueCalls);
  Row += "}";
  Row += ",\"iterations\":" + std::to_string(R.Iterations);
  Row += std::string(",\"escalated\":") + (R.Escalated ? "true" : "false");
  Row += std::string(",\"analysis_alone\":") +
         (R.AnalysisAlone ? "true" : "false");
  char Wall[32];
  std::snprintf(Wall, sizeof(Wall), "%.3f", R.WallMs);
  Row += std::string(",\"wall_ms\":") + Wall;
  Row += ",\"worker\":" + std::to_string(R.Worker);
  Row += ",\"backend\":\"" + jsonEscape(R.Backend) + "\"";
  const smt::SolverStats &S = R.Solver;
  Row += ",\"solver\":{";
  Row += "\"queries\":" + std::to_string(S.Queries);
  Row += ",\"theory_checks\":" + std::to_string(S.TheoryChecks);
  Row += ",\"theory_conflicts\":" + std::to_string(S.TheoryConflicts);
  Row += ",\"cooper_fallbacks\":" + std::to_string(S.CooperFallbacks);
  Row += ",\"cache_hits\":" + std::to_string(S.CacheHits);
  Row += ",\"cache_misses\":" + std::to_string(S.CacheMisses);
  Row += ",\"session_checks\":" + std::to_string(S.SessionChecks);
  Row += ",\"core_skips\":" + std::to_string(S.CoreSkips);
  Row += ",\"qe_cache_hits\":" + std::to_string(S.QeCacheHits);
  Row += ",\"qe_cache_misses\":" + std::to_string(S.QeCacheMisses);
  Row += ",\"sat_restarts\":" + std::to_string(S.SatRestarts);
  Row += ",\"sat_learned\":" + std::to_string(S.SatLearned);
  Row += ",\"sat_reduced\":" + std::to_string(S.SatReduced);
  Row += ",\"sat_max_lbd\":" + std::to_string(S.SatMaxLbd);
  Row += ",\"simplex_pivots\":" + std::to_string(S.SimplexPivots);
  Row += ",\"pivot_limit_hits\":" + std::to_string(S.PivotLimitHits);
  Row += ",\"tableau_reuses\":" + std::to_string(S.TableauReuses);
  if (S.CrossChecks)
    Row += ",\"cross_checks\":" + std::to_string(S.CrossChecks);
  Row += ",\"formula_nodes\":" + std::to_string(S.FormulaNodes);
  Row += ",\"intern_hits\":" + std::to_string(S.FormulaInternHits);
  Row += ",\"intern_probes\":" + std::to_string(S.FormulaInternProbes);
  Row += ",\"fv_memo_hits\":" + std::to_string(S.FormulaMemoHits);
  Row += ",\"fv_memo_misses\":" + std::to_string(S.FormulaMemoMisses);
  Row += ",\"subst_prunes\":" + std::to_string(S.FormulaSubstPrunes);
  Row += ",\"arena_bytes\":" + std::to_string(S.FormulaArenaBytes);
  Row += "}}";
  std::printf("%s\n", Row.c_str());
  std::fflush(stdout);
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  TriageOptions Opts;
  bool ShowStats = false;
  bool Json = false;
  bool StrictManifest = false;
  std::vector<TriageRequest> Queue;
  /// Expected classification per report name (manifest inputs only).
  std::map<std::string, bool> Expected;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Out)) {
        std::fprintf(stderr, "abdiag_triage: %s needs a numeric argument\n",
                     Arg);
        std::exit(2);
      }
    };
    uint64_t V = 0;
    if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else if (std::strcmp(Arg, "--jobs") == 0) {
      NextValue(V);
      Opts.Jobs = static_cast<unsigned>(V);
    } else if (std::strcmp(Arg, "--deadline-ms") == 0) {
      NextValue(V);
      Opts.DeadlineMs = V;
    } else if (std::strcmp(Arg, "--backend") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "abdiag_triage: --backend needs an argument\n");
        return 2;
      }
      Opts.Pipeline.backend(Argv[++I]);
    } else if (std::strcmp(Arg, "--list-backends") == 0) {
      for (const std::string &Name : smt::backendNames())
        std::printf("%s%s\n", Name.c_str(),
                    smt::backendAvailable(Name) ? "" : " (not built)");
      return 0;
    } else if (std::strcmp(Arg, "--manifest") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "abdiag_triage: --manifest needs a file\n");
        return 2;
      }
      study::QueueExpansion Q = study::expandManifestArgument(Argv[++I]);
      if (!Q) {
        std::fprintf(stderr, "abdiag_triage: %s\n", Q.Error.c_str());
        return 2;
      }
      Queue.insert(Queue.end(), Q.Requests.begin(), Q.Requests.end());
      for (const study::ExpectedVerdict &E : Q.Expected)
        Expected[E.Name] = E.IsRealBug;
    } else if (std::strcmp(Arg, "--strict-manifest") == 0) {
      StrictManifest = true;
    } else if (std::strcmp(Arg, "--inject-unknown") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr,
                     "abdiag_triage: --inject-unknown needs a rate\n");
        return 2;
      }
      char *End = nullptr;
      double Rate = std::strtod(Argv[++I], &End);
      if (!End || *End != '\0' || Rate < 0.0 || Rate > 1.0) {
        std::fprintf(stderr,
                     "abdiag_triage: --inject-unknown rate must be in "
                     "[0, 1], got '%s'\n",
                     Argv[I]);
        return 2;
      }
      Opts.InjectUnknownRate = Rate;
    } else if (std::strcmp(Arg, "--inline-calls") == 0) {
      Opts.Pipeline.inlineCalls(true);
    } else if (std::strcmp(Arg, "--no-escalate") == 0) {
      Opts.EscalateOnInconclusive = false;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      ShowStats = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Arg, "--max-iterations") == 0) {
      NextValue(V);
      Opts.Pipeline.maxIterations(static_cast<int>(V));
    } else if (std::strcmp(Arg, "--max-queries") == 0) {
      NextValue(V);
      Opts.Pipeline.maxQueries(static_cast<int>(V));
    } else if (std::strcmp(Arg, "--msa-max-subsets") == 0) {
      NextValue(V);
      Opts.Pipeline.msaMaxSubsets(static_cast<size_t>(V));
    } else if (std::strcmp(Arg, "--simplex-max-pivots") == 0) {
      NextValue(V);
      Opts.Pipeline.simplexMaxPivots(static_cast<int>(V));
    } else if (std::strcmp(Arg, "--costs") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "abdiag_triage: --costs needs an argument\n");
        return 2;
      }
      const char *Model = Argv[++I];
      if (std::strcmp(Model, "paper") == 0)
        Opts.Pipeline.costs(CostModel::Paper);
      else if (std::strcmp(Model, "uniform") == 0)
        Opts.Pipeline.costs(CostModel::Uniform);
      else if (std::strcmp(Model, "swapped") == 0)
        Opts.Pipeline.costs(CostModel::Swapped);
      else {
        std::fprintf(stderr, "abdiag_triage: unknown cost model '%s'\n",
                     Model);
        return 2;
      }
    } else if (std::strcmp(Arg, "--no-auto-annotate") == 0) {
      Opts.Pipeline.autoAnnotate(false);
    } else if (std::strcmp(Arg, "--no-decompose") == 0) {
      Opts.Pipeline.decomposeQueries(false);
    } else if (std::strcmp(Arg, "--no-simplify") == 0) {
      Opts.Pipeline.simplifyQueries(false);
    } else if (std::strcmp(Arg, "--no-learn") == 0) {
      Opts.Pipeline.learnFromSubqueries(false);
    } else if (std::strcmp(Arg, "--no-incremental-msa") == 0) {
      Opts.Pipeline.incrementalMsa(false);
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      std::fprintf(stderr, "abdiag_triage: unknown option '%s'\n", Arg);
      printUsage();
      return 2;
    } else {
      study::QueueExpansion Q = study::expandPathArgument(Arg);
      if (!Q) {
        std::fprintf(stderr, "abdiag_triage: %s\n", Q.Error.c_str());
        return 2;
      }
      Queue.insert(Queue.end(), Q.Requests.begin(), Q.Requests.end());
    }
  }
  if (Queue.empty())
    for (const study::BenchmarkInfo &B : study::benchmarkSuite())
      Queue.emplace_back(study::benchmarkPath(B), B.Name);

  // Fail fast (and readably) on an unknown or unbuilt backend before any
  // table header is printed.
  try {
    smt::FormulaManager Probe;
    smt::createBackend(Opts.Pipeline.Backend, Probe);
  } catch (const smt::BackendError &E) {
    std::fprintf(stderr, "abdiag_triage: %s\n", E.what());
    return 2;
  }

  if (!Json) {
    std::printf("%-24s %-10s %5s  %8s  %s\n", "program", "status", "LOC",
                "queries", "verdict");
    std::printf("%-24s %-10s %5s  %8s  %s\n", "-------", "------", "---",
                "-------", "-------");
  }

  TriageEngine Engine(Opts);
  TriageResult Result = Engine.run(Queue, [&](const TriageReport &R) {
    if (Json) {
      auto It = Expected.find(R.Name);
      printJsonRow(R, It == Expected.end()
                          ? nullptr
                          : (It->second ? "real_bug" : "false_alarm"));
      return;
    }
    std::printf("%-24s %-10s %5zu  %8zu  %s\n", R.Name.c_str(),
                triageStatusName(R.Status), R.Loc, R.Queries,
                humanVerdict(R).c_str());
    if (ShowStats)
      std::printf("  answers: %s=%zu %s=%zu %s=%zu\n"
                  "  solver: queries=%llu theory=%llu conflicts=%llu "
                  "cooper=%llu cache=%llu/%llu session=%llu coreskips=%llu "
                  "qe=%llu/%llu restarts=%llu learned=%llu reduced=%llu "
                  "maxlbd=%llu pivots=%llu pivotlimits=%llu reuses=%llu "
                  "nodes=%llu interned=%llu/%llu fvmemo=%llu/%llu "
                  "prunes=%llu arena=%llu "
                  "wall=%.1fms worker=%d\n",
                  answerName(Answer::Yes), R.AnswersYes,
                  answerName(Answer::No), R.AnswersNo,
                  answerName(Answer::Unknown), R.AnswersUnknown,
                  (unsigned long long)R.Solver.Queries,
                  (unsigned long long)R.Solver.TheoryChecks,
                  (unsigned long long)R.Solver.TheoryConflicts,
                  (unsigned long long)R.Solver.CooperFallbacks,
                  (unsigned long long)R.Solver.CacheHits,
                  (unsigned long long)R.Solver.CacheMisses,
                  (unsigned long long)R.Solver.SessionChecks,
                  (unsigned long long)R.Solver.CoreSkips,
                  (unsigned long long)R.Solver.QeCacheHits,
                  (unsigned long long)R.Solver.QeCacheMisses,
                  (unsigned long long)R.Solver.SatRestarts,
                  (unsigned long long)R.Solver.SatLearned,
                  (unsigned long long)R.Solver.SatReduced,
                  (unsigned long long)R.Solver.SatMaxLbd,
                  (unsigned long long)R.Solver.SimplexPivots,
                  (unsigned long long)R.Solver.PivotLimitHits,
                  (unsigned long long)R.Solver.TableauReuses,
                  (unsigned long long)R.Solver.FormulaNodes,
                  (unsigned long long)R.Solver.FormulaInternHits,
                  (unsigned long long)R.Solver.FormulaInternProbes,
                  (unsigned long long)R.Solver.FormulaMemoHits,
                  (unsigned long long)R.Solver.FormulaMemoMisses,
                  (unsigned long long)R.Solver.FormulaSubstPrunes,
                  (unsigned long long)R.Solver.FormulaArenaBytes, R.WallMs,
                  R.Worker);
    std::fflush(stdout);
  });

  const TriageSummary &Sum = Result.Summary;
  if (!Json) {
    std::printf("\n%zu real bug(s), %zu false alarm(s), %zu unresolved",
                Sum.RealBugs, Sum.FalseAlarms, Sum.Inconclusive);
    if (Sum.LoadErrors)
      std::printf(", %zu load error(s)", Sum.LoadErrors);
    if (Sum.Timeouts)
      std::printf(", %zu timeout(s)", Sum.Timeouts);
    if (Sum.Crashes)
      std::printf(", %zu crash(es)", Sum.Crashes);
    std::printf("  [%.1f ms wall]\n", Sum.WallMs);
    if (ShowStats) {
      std::printf("\naggregate solver statistics:\n");
      Sum.Solver.dump(std::cout);
    }
  }

  // Manifest inputs carry a *certified* classification: a diagnosed
  // verdict that contradicts it is a soundness failure of the pipeline (or
  // a lying backend) and fails the run. Timeouts/inconclusive rows are
  // operational outcomes and only fail under --strict-manifest.
  size_t Matched = 0, Contradicted = 0, Undecided = 0;
  if (!Expected.empty()) {
    for (const TriageReport &R : Result.Reports) {
      auto It = Expected.find(R.Name);
      if (It == Expected.end())
        continue;
      const char *V = verdictName(R);
      const char *Want = It->second ? "real_bug" : "false_alarm";
      if (V && std::strcmp(V, Want) == 0)
        ++Matched;
      else if (V && std::strcmp(V, "inconclusive") != 0) {
        ++Contradicted;
        std::fprintf(stderr,
                     "abdiag_triage: VERDICT CONTRADICTS MANIFEST: %s "
                     "diagnosed %s, certified %s\n",
                     R.Name.c_str(), V, Want);
      } else
        ++Undecided;
    }
    std::FILE *Summary = Json ? stderr : stdout;
    std::fprintf(Summary,
                 "manifest check: %zu/%zu verdicts match, %zu contradicted, "
                 "%zu undecided (timeout/inconclusive/crash)\n",
                 Matched, Expected.size(), Contradicted, Undecided);
  }

  // Nonzero exit when anything needs attention in CI: crashes or load
  // errors are failures of the queue itself, as is any manifest
  // contradiction (and, under --strict-manifest, any undecided manifest
  // report).
  if (Contradicted || (StrictManifest && Undecided))
    return 1;
  return (Sum.Crashes || Sum.LoadErrors) ? 1 : 0;
}
