//===- tools/abdiagd.cpp - The persistent triage daemon ----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Serves concurrent interactive diagnosis sessions over a line-delimited
// JSON protocol (see src/server/Protocol.h):
//
//   abdiagd --socket /tmp/abdiag.sock
//   abdiagd --port 0              # loopback TCP, prints the bound port
//   abdiagd --stdio               # one connection on stdin/stdout
//
// SIGTERM/SIGINT begin a graceful drain: new submits are refused, in-flight
// sessions finish, then the daemon exits 0.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace abdiag;

namespace {

std::atomic<bool> SigDrain{false};

void onSignal(int) { SigDrain.store(true); }

void usage() {
  std::printf(
      "usage: abdiagd (--socket PATH | --port N | --stdio) [options]\n"
      "\n"
      "transport:\n"
      "  --socket PATH         listen on a unix-domain socket\n"
      "  --port N              listen on 127.0.0.1:N (0 = ephemeral; the\n"
      "                        bound port is printed as 'listening N')\n"
      "  --stdio               serve one connection on stdin/stdout\n"
      "\n"
      "admission:\n"
      "  --max-active N        concurrently running sessions (default 64)\n"
      "  --max-pending N       bounded admission queue (default 256)\n"
      "  --tenant-cap N        sessions one tenant may hold (default off)\n"
      "  --session-deadline-ms N  per-session wall clock (default off)\n"
      "  --idle-reap-ms N      cancel sessions awaiting an answer this\n"
      "                        long (default off)\n"
      "\n"
      "pipeline:\n"
      "  --backend NAME        decision procedure (default native)\n"
      "  --no-escalate         no 4x-budget retry of Inconclusive\n"
      "  --max-iterations N / --max-queries N  diagnosis budgets\n");
}

} // namespace

int main(int Argc, char **Argv) {
  server::ServerConfig Cfg;
  bool Stdio = false;
  bool HaveTransport = false;

  auto NeedVal = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "abdiagd: %s needs a value\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return 0;
    } else if (!std::strcmp(Arg, "--socket")) {
      Cfg.UnixPath = NeedVal(I);
      HaveTransport = true;
    } else if (!std::strcmp(Arg, "--port")) {
      Cfg.TcpPort = std::atoi(NeedVal(I));
      HaveTransport = true;
    } else if (!std::strcmp(Arg, "--stdio")) {
      Stdio = true;
      HaveTransport = true;
    } else if (!std::strcmp(Arg, "--max-active")) {
      Cfg.MaxActiveSessions = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--max-pending")) {
      Cfg.MaxPendingSessions = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--tenant-cap")) {
      Cfg.MaxSessionsPerTenant = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--session-deadline-ms")) {
      Cfg.SessionDeadlineMs = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--idle-reap-ms")) {
      Cfg.IdleReapMs = std::strtoull(NeedVal(I), nullptr, 10);
    } else if (!std::strcmp(Arg, "--backend")) {
      Cfg.Pipeline.Backend = NeedVal(I);
    } else if (!std::strcmp(Arg, "--no-escalate")) {
      Cfg.EscalateOnInconclusive = false;
    } else if (!std::strcmp(Arg, "--max-iterations")) {
      Cfg.Pipeline.MaxIterations = std::atoi(NeedVal(I));
    } else if (!std::strcmp(Arg, "--max-queries")) {
      Cfg.Pipeline.MaxQueries = std::atoi(NeedVal(I));
    } else {
      std::fprintf(stderr, "abdiagd: unknown option '%s'\n", Arg);
      usage();
      return 2;
    }
  }
  if (!HaveTransport) {
    usage();
    return 2;
  }

  server::DaemonServer Server(Cfg);

  if (Stdio) {
    Server.serveStdio();
    return 0;
  }

  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "abdiagd: %s\n", Err.c_str());
    return 1;
  }
  if (!Cfg.UnixPath.empty())
    std::fprintf(stderr, "listening %s\n", Cfg.UnixPath.c_str());
  else
    std::fprintf(stderr, "listening %d\n", Server.port());

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  while (!SigDrain.load())
    ::usleep(50 * 1000);

  std::fprintf(stderr, "draining\n");
  Server.requestDrain();
  Server.wait();
  server::DaemonServer::Stats St = Server.stats();
  Server.stop();
  if (!Cfg.UnixPath.empty())
    ::unlink(Cfg.UnixPath.c_str());
  std::fprintf(stderr,
               "drained: submitted=%zu completed=%zu refused=%zu reaped=%zu "
               "peak_active=%zu\n",
               St.Submitted, St.Completed, St.Refused, St.Reaped,
               St.PeakActive);
  return 0;
}
